"""Expression AST, simplifier soundness, substitution, concrete evaluation.

The central property (checked with hypothesis): every simplifying
constructor agrees with naive modular arithmetic on random concrete inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    App,
    Const,
    Deref,
    EvalEnv,
    const,
    evaluate,
    is_constant_expr,
    simplify as s,
    subst_vars,
    to_signed,
    var,
)
from repro.expr.ast import FlagRef, RegRef

X = var("x")
Y = var("y")
Z = var("z")


# -- canonical linear sums ----------------------------------------------------

def test_add_folds_constants():
    assert s.add(const(3), const(4)) == const(7)


def test_sub_cancels_equal_terms():
    assert s.sub(X, X) == const(0)


def test_stack_pointer_arithmetic_collapses():
    rsp = var("rsp0")
    pushed = s.sub(rsp, const(8))
    popped = s.add(pushed, const(8))
    assert popped == rsp


def test_sum_collects_coefficients():
    expr = s.add(s.add(X, X), s.mul(X, const(2)))
    assert expr == s.mul(X, const(4))


def test_sum_is_order_insensitive():
    left = s.add(s.add(X, Y), const(5))
    right = s.add(const(5), s.add(Y, X))
    assert left == right


def test_mul_distributes_constant_over_sum():
    expr = s.mul(s.add(X, const(3)), const(4))
    assert expr == s.add(s.mul(X, const(4)), const(12))


def test_shl_by_constant_becomes_mul():
    assert s.shl(X, const(2)) == s.mul(X, const(4))


def test_neg_absorbed_into_sum():
    assert s.add(X, s.neg(X)) == const(0)


def test_mul_by_zero_and_one():
    assert s.mul(X, const(0)) == const(0)
    assert s.mul(X, const(1)) == X


# -- bit operations -----------------------------------------------------------

def test_xor_self_is_zero():
    assert s.xor(X, X) == const(0)


def test_and_or_idempotent():
    assert s.and_(X, X) == X
    assert s.or_(X, X) == X


def test_and_with_zero_and_mask():
    assert s.and_(X, const(0)) == const(0)
    assert s.and_(X, const((1 << 64) - 1)) == X


def test_zext_of_zext_collapses():
    x8 = var("b", 8)
    assert s.zext(s.zext(x8, 32), 64) == s.zext(x8, 64)


def test_low_of_zext_narrows():
    x8 = var("b", 8)
    assert s.low(s.zext(x8, 64), 32) == s.zext(x8, 32)


def test_low_raises_on_widening():
    x8 = var("b", 8)
    with pytest.raises(ValueError):
        s.low(x8, 32)


# -- constant expressions (paper's C) -----------------------------------------

def test_is_constant_expr():
    assert is_constant_expr(s.add(X, const(4)))
    assert is_constant_expr(Deref(s.add(X, const(8)), 8))
    assert not is_constant_expr(RegRef("rax"))
    assert not is_constant_expr(s.add(RegRef("rax"), const(4)))
    assert not is_constant_expr(App("eq", (FlagRef("zf"), const(1, 1)), 1))


# -- substitution --------------------------------------------------------------

def test_subst_refolds():
    expr = s.add(X, const(5))
    assert subst_vars(expr, {"x": const(10)}) == const(15)


def test_subst_inside_deref():
    expr = Deref(s.add(X, const(8)), 8)
    result = subst_vars(expr, {"x": var("rsp0")})
    assert result == Deref(s.add(var("rsp0"), const(8)), 8)


def test_subst_cancellation():
    expr = s.sub(Y, X)
    assert subst_vars(expr, {"y": X}) == const(0)


# -- concrete evaluation: differential property against Python ints -----------

ops_and_py = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("and_", lambda a, b: a & b),
    ("or_", lambda a, b: a | b),
    ("xor", lambda a, b: a ^ b),
]


@settings(max_examples=300)
@given(
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    b=st.integers(min_value=0, max_value=(1 << 64) - 1),
    op_index=st.integers(min_value=0, max_value=len(ops_and_py) - 1),
)
def test_prop_constructors_match_modular_arithmetic(a, b, op_index):
    name, py = ops_and_py[op_index]
    ctor = getattr(s, name)
    # Fully concrete: constructor must fold.
    folded = ctor(const(a), const(b))
    assert isinstance(folded, Const)
    assert folded.value == py(a, b) & ((1 << 64) - 1)
    # Symbolic then evaluated: must agree with the folded value.
    sym = ctor(X, Y)
    env = EvalEnv(variables={"x": a, "y": b})
    assert evaluate(sym, env) == folded.value


@settings(max_examples=200)
@given(
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    shift=st.integers(min_value=0, max_value=63),
)
def test_prop_shifts(a, shift):
    env = EvalEnv(variables={"x": a})
    assert evaluate(s.shl(X, const(shift)), env) == (a << shift) & ((1 << 64) - 1)
    assert evaluate(s.shr(X, const(shift)), env) == a >> shift
    assert evaluate(s.sar(X, const(shift)), env) == (
        to_signed(a, 64) >> shift
    ) & ((1 << 64) - 1)


@settings(max_examples=200)
@given(
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    b=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_prop_comparisons(a, b):
    env = EvalEnv(variables={"x": a, "y": b})
    assert evaluate(s.ltu(X, Y), env) == int(a < b)
    assert evaluate(s.leu(X, Y), env) == int(a <= b)
    assert evaluate(s.lts(X, Y), env) == int(to_signed(a, 64) < to_signed(b, 64))
    assert evaluate(s.eq(X, Y), env) == int(a == b)


@settings(max_examples=150)
@given(
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    b=st.integers(min_value=1, max_value=(1 << 64) - 1),
)
def test_prop_division(a, b):
    env = EvalEnv(variables={"x": a, "y": b})
    assert evaluate(s.udiv(X, Y), env) == a // b
    assert evaluate(s.urem(X, Y), env) == a % b
    sa, sb = to_signed(a, 64), to_signed(b, 64)
    expected_q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        expected_q = -expected_q
    assert to_signed(evaluate(s.sdiv(X, Y), env), 64) == expected_q


@settings(max_examples=200)
@given(
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    coeffs=st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=6),
)
def test_prop_linear_sum_canonicalization_sound(a, coeffs):
    """Building a sum term-by-term equals evaluating the canonical form."""
    expr = const(0)
    expected = 0
    for coeff in coeffs:
        expr = s.add(expr, s.mul(X, const(coeff)))
        expected = (expected + coeff * a) & ((1 << 64) - 1)
    env = EvalEnv(variables={"x": a})
    assert evaluate(expr, env) == expected


def test_deref_evaluation_uses_memory_reader():
    memory = {0x1000: 0xDEADBEEF}

    def read(addr, size):
        return memory.get(addr, 0)

    env = EvalEnv(variables={"x": 0x1000}, read_mem=read)
    assert evaluate(Deref(X, 4), env) == 0xDEADBEEF


def test_ite_evaluation():
    env = EvalEnv(variables={"x": 1, "y": 7, "z": 9})
    cond = s.eq(X, const(1))
    assert evaluate(s.ite(cond, Y, Z), env) == 7
    env2 = EvalEnv(variables={"x": 0, "y": 7, "z": 9})
    assert evaluate(s.ite(cond, Y, Z), env2) == 9
