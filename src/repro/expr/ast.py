"""Symbolic expression AST (Section 3.1).

The paper's grammar::

    E ::= R | F | W | V | E x N | Op x [E]

maps onto five immutable node types:

* :class:`Const`   — machine words ``W`` (unsigned, modulo ``2**width``);
* :class:`Var`     — variables ``V``: *initial* register values (``rdi0``),
  havoc values introduced by external calls, and return-address symbols;
* :class:`RegRef`  — a *current* register ``R`` (only meaningful transiently,
  while evaluating an instruction's operands);
* :class:`FlagRef` — a *current* flag ``F``;
* :class:`Deref`   — a memory region read ``E x N`` (address expr, byte size);
* :class:`App`     — operator application ``Op x [E]``.

"Constant expressions" (the paper's ``C``) are expressions built without
``RegRef``/``FlagRef``: combinations of words, variables, and reads from
regions with constant-expression addresses.  :func:`is_constant_expr` tests
this.

All arithmetic is fixed-width two's-complement; ``width`` is in bits.
Expressions are hash-consed value objects: structural equality and hashing
are what the predicate and memory-model layers rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

MASK64 = (1 << 64) - 1


def mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned *width*-bit value as two's-complement."""
    sign = 1 << (width - 1)
    value &= mask(width)
    return value - (1 << width) if value & sign else value


class Expr:
    """Base class for all symbolic expressions."""

    __slots__ = ()
    width: int

    # Subclasses are frozen dataclasses; the helpers below build on that.
    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self):
        """Yield self and all transitive sub-expressions."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Const(Expr):
    """A machine word; value stored unsigned modulo ``2**width``."""

    value: int
    width: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & mask(self.width))
        object.__setattr__(self, "_hash", hash(("C", self.value, self.width)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def signed(self) -> int:
        return to_signed(self.value, self.width)

    def __str__(self) -> str:
        return hex(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A symbolic variable: an unknown but fixed machine word.

    Naming conventions used by the lifter: ``rdi0`` (initial register
    values), ``ret@<addr>`` (return-address symbols for context-free calls),
    ``havoc<n>`` (values destroyed by external calls or unmodelled reads).
    """

    name: str
    width: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("V", self.name, self.width)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RegRef(Expr):
    """The *current* value of a 64-bit register family (transient)."""

    name: str
    width: int = 64

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class FlagRef(Expr):
    """The *current* value of a status flag (transient)."""

    name: str
    width: int = 1

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Deref(Expr):
    """An ``size``-byte little-endian read from memory region ``[addr, size]``.

    A ``Deref`` whose address is a constant expression denotes the value that
    region held *in the initial state* (memory writes substitute derefs away
    or havoc them); this is exactly the paper's ``*[a, n]`` notation.
    """

    addr: "Expr"
    size: int  # bytes

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("D", self.addr, self.size)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def width(self) -> int:
        return self.size * 8

    def children(self) -> tuple[Expr, ...]:
        return (self.addr,)

    def __str__(self) -> str:
        return f"*[{self.addr}, {self.size}]"


#: Operators. Binary unless noted. All operate at App.width.
OPS = frozenset({
    "add", "sub", "mul",            # wrapping arithmetic
    "udiv", "sdiv", "urem", "srem",  # division (fold only when concrete)
    "and", "or", "xor",
    "not", "neg",                    # unary
    "shl", "shr", "sar",
    "zext", "sext",                  # (value, from_width Const) -> width
    "low",                           # truncate to width
    "ite",                           # (cond, then, else)
    "ltu", "leu", "lts", "les", "eq",  # comparisons -> width 1
    "bool_not", "bool_and", "bool_or",
    "parity",                        # parity of low byte -> width 1
})


@dataclass(frozen=True)
class App(Expr):
    """Application of an operator to subexpressions, at a given bit width."""

    op: str
    args: tuple[Expr, ...]
    width: int = 64

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown operator: {self.op}")
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(
            self, "_hash", hash(("A", self.op, self.args, self.width))
        )

    def __hash__(self) -> int:
        return self._hash

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        if self.op == "add" and len(self.args) == 2:
            return f"({self.args[0]} + {self.args[1]})"
        if self.op == "sub" and len(self.args) == 2:
            return f"({self.args[0]} - {self.args[1]})"
        if self.op == "mul" and len(self.args) == 2:
            return f"({self.args[0]} * {self.args[1]})"
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}{self.width}({inner})"


# -- convenience constructors -------------------------------------------------

ZERO = Const(0, 64)
ONE = Const(1, 64)
TRUE = Const(1, 1)
FALSE = Const(0, 1)


def const(value: int, width: int = 64) -> Const:
    return Const(value, width)


def var(name: str, width: int = 64) -> Var:
    return Var(name, width)


def is_constant_expr(expr: Expr) -> bool:
    """True if *expr* is a paper-style constant expression ``C``:
    contains no current-register/flag references."""
    return not any(isinstance(node, (RegRef, FlagRef)) for node in expr.walk())


def variables_of(expr: Expr) -> frozenset[Var]:
    """All Var leaves of *expr*."""
    return frozenset(node for node in expr.walk() if isinstance(node, Var))


@lru_cache(maxsize=131072)
def expr_key(expr: Expr) -> str:
    """Memoized ``str(expr)`` for use as a deterministic sort key."""
    return str(expr)
