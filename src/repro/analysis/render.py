"""Rendering lint reports: plain text and SARIF-lite JSON.

The JSON shape follows SARIF 2.1.0 closely enough for generic viewers
(``runs[].tool.driver.rules`` + ``runs[].results``) while staying small:
locations carry the instruction address rather than source regions, since
the subject is a binary.
"""

from __future__ import annotations

import json

from repro.analysis.lint import SEVERITIES, LintReport, all_rules, rule_description

#: Diagnostic severity -> SARIF result level.
_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


def render_text(report: LintReport) -> str:
    """One line per diagnostic plus a summary line."""
    lines = [str(diag) for diag in report.diagnostics]
    counts = report.counts()
    summary = ", ".join(
        f"{counts[severity]} {severity}" for severity in SEVERITIES
    )
    verdict = "clean" if not report.findings else "findings"
    lines.append(f"{report.name}: {summary} ({verdict})")
    return "\n".join(lines)


def _sarif_rule(rule_id: str) -> dict:
    rule: dict = {"id": rule_id}
    description = rule_description(rule_id)
    if description:
        rule["shortDescription"] = {"text": description}
    return rule


def to_sarif(report: LintReport) -> dict:
    """The report as a SARIF-lite dictionary (deterministic ordering)."""
    all_rules()                 # ensure builtin descriptions are registered
    rule_ids = sorted({diag.rule for diag in report.diagnostics})
    results = []
    for diag in report.diagnostics:
        result: dict = {
            "ruleId": diag.rule,
            "level": _SARIF_LEVEL[diag.severity],
            "message": {"text": diag.message},
        }
        if diag.addr is not None:
            result["locations"] = [{
                "physicalLocation": {
                    "address": {"absoluteAddress": diag.addr},
                },
            }]
        if diag.function is not None:
            result["properties"] = {"function": diag.function}
        results.append(result)
    return {
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": [_sarif_rule(rule_id) for rule_id in rule_ids],
                },
            },
            "artifacts": [{"description": {"text": report.name}}],
            "results": results,
        }],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(to_sarif(report), indent=2)
