"""The lifting-service wire protocol: schema-validated JSONL over a socket.

One request object per line, one (or more, for ``watch``) response objects
per line, UTF-8 JSON, ``\\n``-terminated.  The schema is validated on
*both* ends — the server rejects malformed requests with a structured
error reply, and the client refuses to surface a malformed response —
mirroring :mod:`repro.obs.progress`, where a schema violation is a bug in
the emitter, not a consumer problem.

Framing failure modes (all answered, then the connection is closed):

* **not JSON** — ``{"ok": false, "error": {"code": "bad-json", ...}}``;
* **oversized** — a request line longer than :data:`MAX_LINE_BYTES`
  yields ``code = "oversized"`` (the reader stops buffering at the cap,
  so a hostile client cannot balloon server memory);
* **truncated** — EOF with a partial line buffered yields
  ``code = "truncated"``.

Schema-invalid but well-framed requests (unknown op, missing fields, bad
job specs) get a structured error and the connection **stays open** —
the client made a request, it can make another.

Requests::

    {"op": "ping"}
    {"op": "submit", "job": {...}, "tenant": "acme"}
    {"op": "status", "job_id": "j-3", "tenant": "acme"}
    {"op": "result", "job_id": "j-3", "tenant": "acme"}
    {"op": "cancel", "job_id": "j-3", "tenant": "acme"}
    {"op": "watch",  "job_id": "j-3", "tenant": "acme"}
    {"op": "stats"}
    {"op": "drain"}

Job specs (the ``job`` field of ``submit``)::

    {"kind": "lift",   "path": "/abs/bin.elf", "priority": 5, ...options}
    {"kind": "corpus", "scale": 1, ...options}
    {"kind": "chaos",  "action": "sleep|crash|crash_until|spin|alloc", ...}

``chaos`` jobs exist for the fault-injection test suite and CI smoke and
are refused unless the server was started with ``allow_chaos``.

Every response carries ``"ok"``; errors carry ``error.code`` from
:data:`ERROR_CODES` and a human ``error.message``.  ``watch`` streams
heartbeat events (``{"event": {...}}`` envelopes, schema-validated by
:func:`repro.obs.progress.validate_progress_obj`) and terminates with a
normal ``{"ok": true, "job": {...}}`` line.

Stdlib-only; imports nothing from :mod:`repro` outside :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import socket
from typing import Any

#: Hard cap on one request/response line (bytes, newline included).
MAX_LINE_BYTES = 1 << 20

#: Priorities outside this band are schema errors (bigger = sooner).
MIN_PRIORITY, MAX_PRIORITY = -100, 100

PROTOCOL_VERSION = 1

OPS = ("ping", "submit", "status", "result", "cancel", "watch", "stats",
       "drain")

#: op -> {field: allowed types}; "op" itself is implied.
_OP_FIELDS: dict[str, dict[str, tuple]] = {
    "ping": {},
    "submit": {"job": (dict,)},
    "status": {"job_id": (str,)},
    "result": {"job_id": (str,)},
    "cancel": {"job_id": (str,)},
    "watch": {"job_id": (str,)},
    "stats": {},
    "drain": {},
}

#: Optional per-op fields (tenant defaults server-side to "default").
_OP_OPTIONAL: dict[str, dict[str, tuple]] = {
    op: {"tenant": (str,)} for op in OPS
}

JOB_KINDS = ("lift", "corpus", "chaos")

CHAOS_ACTIONS = ("sleep", "crash", "crash_until", "spin", "alloc")

#: Lift options forwarded verbatim into the lifter (subset of ``lift()``).
_OPTION_FIELDS: dict[str, tuple] = {
    "max_states": (int,),
    "timeout_seconds": (int, float),
    "schedule": (str,),
    "pointer_summaries": (bool,),
    "engine": (str,),
}

#: Transfer engines a job may request (mirrors repro.hoare.lifter.ENGINES,
#: restated here because the protocol module must stay stdlib-only).
ENGINE_NAMES = ("tau", "uop")

#: job kind -> {field: (required, allowed types)}.
_JOB_FIELDS: dict[str, dict[str, tuple[bool, tuple]]] = {
    "lift": {"path": (True, (str,))},
    "corpus": {"scale": (True, (int,))},
    "chaos": {
        "action": (True, (str,)),
        "seconds": (False, (int, float)),
        "attempts": (False, (int,)),
        "bytes": (False, (int,)),
    },
}

#: Fields every job spec may carry on top of its kind-specific ones.
_JOB_COMMON: dict[str, tuple[bool, tuple]] = {
    "kind": (True, (str,)),
    "priority": (False, (int,)),
    "cache": (False, (bool,)),
    "cpu_seconds": (False, (int, float)),
    "memory_bytes": (False, (int,)),
    "options": (False, (dict,)),
}

ERROR_CODES = frozenset({
    "bad-json", "oversized", "truncated", "bad-request", "bad-job",
    "unknown-job", "forbidden", "not-done", "draining", "chaos-disabled",
    "internal",
})

#: Error codes after which the server closes the connection.
CLOSING_ERRORS = frozenset({"bad-json", "oversized", "truncated"})


class ProtocolError(ValueError):
    """A schema or framing violation, tagged with its error code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


def _check_fields(obj: dict, required: dict[str, tuple],
                  optional: dict[str, tuple], what: str, code: str) -> None:
    for name, types in required.items():
        if name not in obj:
            raise ProtocolError(code, f"{what}: missing field {name!r}")
    allowed = dict(required)
    allowed.update(optional)
    for name, value in obj.items():
        types = allowed.get(name)
        if types is None:
            raise ProtocolError(code, f"{what}: unexpected field {name!r}")
        # bool is an int subclass; only fields listing bool accept it.
        if ((isinstance(value, bool) and bool not in types)
                or not isinstance(value, types)):
            raise ProtocolError(
                code,
                f"{what}: field {name!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}")


def validate_job_spec(spec: Any) -> None:
    """Raise :class:`ProtocolError` (code ``bad-job``) unless *spec* is a
    well-formed job specification."""
    if not isinstance(spec, dict):
        raise ProtocolError("bad-job", "job spec must be an object")
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError("bad-job", f"unknown job kind: {kind!r}")
    required = {name: types for name, (req, types)
                in _JOB_FIELDS[kind].items() if req}
    optional = {name: types for name, (req, types)
                in _JOB_FIELDS[kind].items() if not req}
    optional.update({name: types for name, (req, types)
                     in _JOB_COMMON.items() if not req})
    required["kind"] = (str,)
    _check_fields(spec, required, optional, f"job[{kind}]", "bad-job")
    priority = spec.get("priority", 0)
    if not MIN_PRIORITY <= priority <= MAX_PRIORITY:
        raise ProtocolError(
            "bad-job", f"priority {priority} outside "
                       f"[{MIN_PRIORITY}, {MAX_PRIORITY}]")
    if kind == "chaos" and spec.get("action") not in CHAOS_ACTIONS:
        raise ProtocolError(
            "bad-job", f"unknown chaos action: {spec.get('action')!r}")
    if kind == "corpus" and spec.get("scale", 1) < 1:
        raise ProtocolError("bad-job", "corpus scale must be >= 1")
    options = spec.get("options", {})
    _check_fields(options, {}, _OPTION_FIELDS, "job options", "bad-job")
    engine = options.get("engine")
    if engine is not None and engine not in ENGINE_NAMES:
        raise ProtocolError("bad-job", f"unknown engine: {engine!r}")


def validate_request(obj: Any) -> None:
    """Raise :class:`ProtocolError` unless *obj* is one valid request."""
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be an object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError("bad-request", f"unknown op: {op!r}")
    body = {name: value for name, value in obj.items() if name != "op"}
    _check_fields(body, _OP_FIELDS[op], _OP_OPTIONAL[op],
                  f"request[{op}]", "bad-request")
    if op == "submit":
        validate_job_spec(obj["job"])


def validate_response(obj: Any) -> None:
    """Raise ``ValueError`` unless *obj* is one well-formed response."""
    if not isinstance(obj, dict):
        raise ValueError("response must be an object")
    ok = obj.get("ok")
    if not isinstance(ok, bool):
        raise ValueError("response missing boolean 'ok'")
    if not ok:
        error = obj.get("error")
        if (not isinstance(error, dict)
                or error.get("code") not in ERROR_CODES
                or not isinstance(error.get("message"), str)):
            raise ValueError(f"malformed error response: {obj!r}")


def error_response(code: str, message: str) -> dict:
    assert code in ERROR_CODES, code
    return {"ok": False, "error": {"code": code, "message": message}}


def encode(obj: dict) -> bytes:
    """One wire line for *obj* (sorted keys, newline-terminated)."""
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


class LineReader:
    """Reads capped JSONL lines off a socket, distinguishing a clean close
    from a truncated one.

    :meth:`readline` returns the line bytes (no newline), ``None`` on a
    clean EOF (empty buffer), and raises :class:`ProtocolError` with code
    ``oversized`` (line exceeded *max_bytes* — the excess is *not*
    buffered) or ``truncated`` (EOF with a partial line pending).
    """

    def __init__(self, sock: socket.socket,
                 max_bytes: int = MAX_LINE_BYTES) -> None:
        self._sock = sock
        self._max = max_bytes
        self._buffer = b""

    def readline(self) -> bytes | None:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1:]
                # A complete line can still exceed the cap when it arrives
                # faster than the no-newline check below fires.
                if len(line) > self._max:
                    raise ProtocolError(
                        "oversized",
                        f"request line exceeds {self._max} bytes")
                return line
            if len(self._buffer) > self._max:
                self._buffer = b""
                raise ProtocolError(
                    "oversized",
                    f"request line exceeds {self._max} bytes")
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    self._buffer = b""
                    raise ProtocolError(
                        "truncated", "connection closed mid-line")
                return None
            self._buffer += chunk


def read_request(reader: LineReader) -> dict | None:
    """One validated request off *reader*; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on framing (``bad-json``/``oversized``/
    ``truncated``) or schema (``bad-request``/``bad-job``) violations.
    """
    line = reader.readline()
    if line is None:
        return None
    try:
        obj = json.loads(line.decode("utf-8", errors="replace"))
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"not JSON: {exc}") from None
    validate_request(obj)
    return obj
