"""The daemon's persistent worker pool.

Each worker is one long-lived process connected to the parent by a duplex
pipe: the scheduler sends ``(unit_id, attempt, payload)``, the worker
answers ``(unit_id, result_dict)`` and waits for the next unit — the
import and warm-up cost is paid once per worker, not per job.  Workers
are started with the ``spawn`` context: the parent is multithreaded
(accept loop, connection handlers, scheduler), and forking a threaded
process is the classic deadlock trap.

Crash semantics — the contract the fault-injection suite pins down:

* a worker death is detected via its process sentinel / pipe EOF, never
  by timeout alone, so a ``SIGKILL`` mid-job surfaces immediately;
* the dead worker's unit is the only thing it can take down: the pool
  respawns a replacement and reports the loss to the scheduler, which
  retries the unit with capped exponential backoff
  (:func:`repro.serve.jobs.backoff_delay`) and fails it with structured
  diagnostics after ``max_retries`` — never a hang;
* a **deterministic** in-job exception is not a crash: the worker stays
  alive and returns ``{"status": "error", ...}``, which fails the unit
  immediately (re-running deterministic Python raises the same thing).

Per-unit budgets are enforced *inside* the worker via ``resource``:

* ``memory_bytes`` caps the address space (``RLIMIT_AS`` soft limit for
  the duration of the unit); the resulting ``MemoryError`` becomes a
  structured ``budget-memory`` failure;
* ``cpu_seconds`` arms ``RLIMIT_CPU`` at (current usage + budget), so
  the kernel delivers ``SIGXCPU`` to a runaway unit no matter what it is
  doing; the handler raises and the worker answers ``budget-cpu``.

Budget failures are final (a second attempt would exhaust the same
budget); only worker *death* triggers the retry path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import resource
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Any

#: Worker exit codes the parent folds into diagnostics.
EXIT_OK = 0


class _CpuBudgetExceeded(Exception):
    pass


def _sigxcpu(_signum, _frame):
    raise _CpuBudgetExceeded()


class _budgets:
    """Apply per-unit rlimits inside the worker; restore on exit."""

    def __init__(self, cpu_seconds: float | None,
                 memory_bytes: int | None) -> None:
        self.cpu_seconds = cpu_seconds
        self.memory_bytes = memory_bytes
        self._saved: list[tuple[int, tuple[int, int]]] = []
        self._old_handler = None

    def __enter__(self):
        if self.memory_bytes:
            soft_hard = resource.getrlimit(resource.RLIMIT_AS)
            self._saved.append((resource.RLIMIT_AS, soft_hard))
            resource.setrlimit(resource.RLIMIT_AS,
                               (self.memory_bytes, soft_hard[1]))
        if self.cpu_seconds:
            usage = resource.getrusage(resource.RUSAGE_SELF)
            used = usage.ru_utime + usage.ru_stime
            soft_hard = resource.getrlimit(resource.RLIMIT_CPU)
            self._saved.append((resource.RLIMIT_CPU, soft_hard))
            self._old_handler = signal.signal(signal.SIGXCPU, _sigxcpu)
            resource.setrlimit(
                resource.RLIMIT_CPU,
                (int(used + self.cpu_seconds) + 1, soft_hard[1]))
        return self

    def __exit__(self, *_exc):
        for which, soft_hard in reversed(self._saved):
            try:
                resource.setrlimit(which, soft_hard)
            except (ValueError, OSError):
                pass
        if self._old_handler is not None:
            signal.signal(signal.SIGXCPU, self._old_handler)
        return False


def _execute_chaos(payload: dict, attempt: int) -> dict:
    """Test-suite / CI fault probes (gated behind ``allow_chaos``)."""
    action = payload["action"]
    if action == "crash":
        os._exit(137)
    if action == "crash_until":
        # Die on the first N attempts, succeed afterwards — the
        # deterministic "killed worker's job completes via retry" probe.
        if attempt <= payload.get("attempts", 1):
            os._exit(137)
        return {"status": "ok", "chaos": "survived", "attempt": attempt}
    if action == "sleep":
        time.sleep(payload.get("seconds", 1.0))
        return {"status": "ok", "chaos": "slept"}
    if action == "spin":
        deadline = time.monotonic() + payload.get("seconds", 60.0)
        n = 0
        while time.monotonic() < deadline:
            n = (n + 1) % 1_000_003
        return {"status": "ok", "chaos": "spun"}
    if action == "alloc":
        blob = bytearray(payload.get("bytes", 1 << 30))
        return {"status": "ok", "chaos": "allocated", "bytes": len(blob)}
    raise ValueError(f"unknown chaos action {action!r}")


def execute_payload(payload: dict, attempt: int) -> dict:
    """Run one unit payload; always returns a structured result dict."""
    budget = _budgets(payload.get("cpu_seconds"),
                      payload.get("memory_bytes"))
    try:
        with budget:
            if payload["type"] == "chaos":
                return _execute_chaos(payload, attempt)
            if payload["type"] == "task":
                from repro.eval.runner import run_task

                record, delta, obs_data = run_task(payload["task"])
                return {"status": "ok", "record": record,
                        "counters": delta, "obs": obs_data}
            raise ValueError(f"unknown payload type {payload['type']!r}")
    except MemoryError:
        return {"status": "error",
                "error": {"code": "budget-memory",
                          "message": f"unit exceeded its "
                                     f"{payload.get('memory_bytes')} byte "
                                     f"memory budget"}}
    except _CpuBudgetExceeded:
        return {"status": "error",
                "error": {"code": "budget-cpu",
                          "message": f"unit exceeded its "
                                     f"{payload.get('cpu_seconds')} s "
                                     f"CPU budget"}}
    except Exception as exc:  # deterministic failure — no retry
        return {"status": "error",
                "error": {"code": "exception",
                          "message": f"{type(exc).__name__}: {exc}",
                          "traceback": traceback.format_exc(limit=10)}}


def worker_main(conn, worker_id: int) -> None:
    """The worker process body: execute units off *conn* until EOF."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # The parent handles SIGTERM (drain); workers finish their unit.
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:  # orderly shutdown
            break
        unit_id, attempt, payload = message
        result = execute_payload(payload, attempt)
        try:
            conn.send((unit_id, result))
        except (BrokenPipeError, OSError):
            break
    conn.close()


@dataclass
class PoolEvent:
    """One scheduler-visible pool occurrence."""

    kind: str                  # "result" | "died"
    worker_id: int
    unit_id: str | None = None
    result: dict | None = None
    exitcode: int | None = None


class WorkerHandle:
    def __init__(self, worker_id: int, ctx) -> None:
        self.id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(target=worker_main,
                                args=(child_conn, worker_id),
                                name=f"repro-serve-worker-{worker_id}",
                                daemon=True)
        self.proc.start()
        child_conn.close()
        self.unit_id: str | None = None
        self.units_done = 0
        self.started_ts = time.time()

    @property
    def idle(self) -> bool:
        return self.unit_id is None and self.proc.is_alive()

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def assign(self, unit_id: str, attempt: int, payload: Any) -> None:
        assert self.unit_id is None, f"worker {self.id} is busy"
        self.unit_id = unit_id
        self.conn.send((unit_id, attempt, payload))

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=5)

    def close(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():
            self.kill()
        self.conn.close()


class WorkerPool:
    """N persistent workers plus the event loop the scheduler blocks on."""

    def __init__(self, size: int, start_method: str = "spawn") -> None:
        self._ctx = multiprocessing.get_context(start_method)
        self._next_id = 0
        self.workers: list[WorkerHandle] = []
        self.respawns = 0
        for _ in range(size):
            self._spawn()
        # Self-pipe: the server pokes it to wake a blocked wait() when new
        # work arrives or a drain begins.
        self._wake_recv, self._wake_send = self._ctx.Pipe(duplex=False)

    def _spawn(self) -> WorkerHandle:
        worker = WorkerHandle(self._next_id, self._ctx)
        self._next_id += 1
        self.workers.append(worker)
        return worker

    # -- scheduler interface ----------------------------------------------

    def idle_workers(self) -> list[WorkerHandle]:
        return [w for w in self.workers if w.idle]

    def busy_workers(self) -> list[WorkerHandle]:
        return [w for w in self.workers if w.unit_id is not None]

    def worker_for_unit(self, unit_id: str) -> WorkerHandle | None:
        for worker in self.workers:
            if worker.unit_id == unit_id:
                return worker
        return None

    def wake(self) -> None:
        try:
            self._wake_send.send(b"!")
        except (BrokenPipeError, OSError):
            pass

    def kill_worker(self, worker: WorkerHandle) -> None:
        """Forcibly terminate *worker* (cancellation of a running unit)
        and replace it.  The caller owns the unit's bookkeeping."""
        worker.kill()
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker in self.workers:
            self.workers.remove(worker)
        self.respawns += 1
        self._spawn()

    def wait(self, timeout: float | None) -> list[PoolEvent]:
        """Block until a worker answers, dies, or the pool is poked.

        Returns the batch of events (possibly empty on timeout/poke).
        Dead workers are replaced before returning, so pool capacity is
        invariant; the scheduler only handles the orphaned unit.
        """
        conn_map = {w.conn: w for w in self.workers}
        sentinel_map = {w.proc.sentinel: w for w in self.workers}
        waitables = (list(conn_map) + list(sentinel_map)
                     + [self._wake_recv])
        ready = multiprocessing.connection.wait(waitables, timeout)
        events: list[PoolEvent] = []
        dead: list[WorkerHandle] = []
        for obj in ready:
            if obj is self._wake_recv:
                try:
                    self._wake_recv.recv()
                except (EOFError, OSError):
                    pass
                continue
            worker = conn_map.get(obj)
            if worker is not None:
                try:
                    unit_id, result = worker.conn.recv()
                except (EOFError, OSError):
                    if worker not in dead:
                        dead.append(worker)
                    continue
                worker.unit_id = None
                worker.units_done += 1
                events.append(PoolEvent("result", worker.id,
                                        unit_id=unit_id, result=result))
                continue
            worker = sentinel_map.get(obj)
            if worker is not None and not worker.proc.is_alive():
                if worker not in dead:
                    dead.append(worker)
        for worker in dead:
            # A sentinel can fire while a final result sits in the pipe
            # (worker answered, then exited) — drain it before declaring
            # the unit lost.
            drained = False
            try:
                if worker.conn.poll(0):
                    unit_id, result = worker.conn.recv()
                    worker.unit_id = None
                    events.append(PoolEvent("result", worker.id,
                                            unit_id=unit_id, result=result))
                    drained = True
            except (EOFError, OSError):
                pass
            worker.proc.join(timeout=5)
            exitcode = worker.proc.exitcode
            orphan = worker.unit_id
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker in self.workers:
                self.workers.remove(worker)
            self.respawns += 1
            self._spawn()
            if not drained or orphan is not None:
                events.append(PoolEvent("died", worker.id, unit_id=orphan,
                                        exitcode=exitcode))
        return events

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "size": len(self.workers),
            "busy": len(self.busy_workers()),
            "respawns": self.respawns,
            "pids": [w.pid for w in self.workers],
            "units_done": sum(w.units_done for w in self.workers),
        }

    def shutdown(self) -> None:
        for worker in list(self.workers):
            worker.close()
        self.workers.clear()
        for conn in (self._wake_recv, self._wake_send):
            try:
                conn.close()
            except OSError:
                pass
