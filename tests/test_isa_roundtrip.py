"""Encoder/decoder round-trip tests for the x86-64 subset.

The core property: for every instruction we can encode,
``encode(decode(encode(i))) == encode(i)`` and the decoded instruction has
the same mnemonic and operand shapes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Imm, Mem, Reg, decode, encode, insn
from repro.isa.instruction import ALU_OPS, CONDITION_CODES, SHIFT_OPS
from repro.isa.registers import GPR16, GPR32, GPR64, GPR8


def roundtrip(instr):
    code = encode(instr)
    decoded = decode(code)
    assert decoded.size == len(code), f"{instr}: size {decoded.size} != {len(code)}"
    recode = encode(decoded)
    assert recode == code, f"{instr}: {code.hex()} != {recode.hex()}"
    return decoded


# -- hand-picked encodings checked against known-good byte sequences -------

KNOWN_ENCODINGS = [
    (insn("ret"), "c3"),
    (insn("nop"), "90"),
    (insn("leave"), "c9"),
    (insn("push", "rbp"), "55"),
    (insn("pop", "rbp"), "5d"),
    (insn("push", "r12"), "4154"),
    (insn("mov", "rbp", "rsp"), "4889e5"),
    (insn("mov", "eax", Imm(0, 32)), "b800000000"),
    (insn("sub", "rsp", Imm(0x20, 32)), "4883ec20"),
    (insn("add", "rsp", Imm(0x20, 32)), "4883c420"),
    (insn("xor", "eax", "eax"), "31c0"),
    (insn("cmp", "eax", Imm(0xC3, 32)), "3dc3000000"),
    (insn("mov", Mem(64, base="rdi"), "rax"), "488907"),
    (insn("mov", "rax", Mem(64, base="rsp", disp=8)), "488b442408"),
    (insn("mov", Mem(32, base="rsi"), Imm(1, 32)), "c70601000000"),
    (insn("lea", "rax", Mem(64, base="rip", disp=0x100)), "488d0500010000"),
    (insn("jmp", Mem(64, base="rdi")), "ff27"),
    (insn("call", "rax"), "ffd0"),
    (insn("mov", "eax", Mem(32, index="rax", scale=4, disp=0x1000)),
     "8b048500100000"),
    (insn("movzx", "eax", "al"), "0fb6c0"),
    (insn("movsxd", "rax", "eax"), "4863c0"),
    (insn("cqo"), "4899"),
    (insn("imul", "rax", "rdi"), "480fafc7"),
    (insn("shl", "rax", Imm(4, 8)), "48c1e004"),
    (insn("sar", "eax", Imm(1, 8)), "d1f8"),
    (insn("test", "al", "al"), "84c0"),
    (insn("sete", "al"), "0f94c0"),
    (insn("cmove", "rax", "rbx"), "480f44c3"),
    (insn("ud2"), "0f0b"),
    (insn("syscall"), "0f05"),
]


@pytest.mark.parametrize(
    "instr,expected", KNOWN_ENCODINGS, ids=[str(i) for i, _ in KNOWN_ENCODINGS]
)
def test_known_encoding(instr, expected):
    assert encode(instr).hex() == expected


@pytest.mark.parametrize(
    "instr,expected", KNOWN_ENCODINGS, ids=[str(i) for i, _ in KNOWN_ENCODINGS]
)
def test_known_roundtrip(instr, expected):
    roundtrip(instr)


# -- the paper's Section 2 example, ported to x86-64 ------------------------

def test_paper_example_bytes_decode():
    """cmp/ja/mov-jumptable/mov/mov/jmp from Figure 1 (64-bit registers)."""
    decoded = decode(bytes.fromhex("3dc3000000"))
    assert decoded.mnemonic == "cmp"
    assert decoded.operands[0] == Reg("eax")
    assert decoded.operands[1].value == 0xC3
    # The famous weird edge: byte 1 of "cmp eax, 0xc3" decodes as ret.
    weird = decode(bytes.fromhex("3dc3000000"), offset=1)
    assert weird.mnemonic == "ret"


# -- exhaustive-ish sweeps ---------------------------------------------------

REGS64 = [Reg(r) for r in GPR64]
REGS32 = [Reg(r) for r in GPR32]
REGS8 = [Reg(r) for r in GPR8]


@pytest.mark.parametrize("mnemonic", sorted(ALU_OPS))
def test_alu_reg_reg_all_registers(mnemonic):
    for dst in REGS64:
        for src in (REGS64[0], REGS64[9], REGS64[13]):
            roundtrip(insn(mnemonic, dst, src))


@pytest.mark.parametrize("mnemonic", sorted(ALU_OPS))
def test_alu_imm_forms(mnemonic):
    for imm in (Imm(1, 32), Imm(0x7F, 32), Imm(0x80, 32), Imm(0x12345, 32)):
        for dst in (Reg("rax"), Reg("r13"), Reg("ebx")):
            roundtrip(insn(mnemonic, dst, imm))


@pytest.mark.parametrize("cc", CONDITION_CODES)
def test_jcc_setcc_cmovcc(cc):
    decoded = roundtrip(insn(f"j{cc}", Imm(0x40, 32)))
    assert decoded.mnemonic == f"j{cc}"
    roundtrip(insn(f"j{cc}", Imm(-5, 8)))
    roundtrip(insn(f"set{cc}", "al"))
    roundtrip(insn(f"set{cc}", "r10b"))
    roundtrip(insn(f"cmov{cc}", "rax", "r9"))


@pytest.mark.parametrize("mnemonic", sorted(SHIFT_OPS))
def test_shift_forms(mnemonic):
    roundtrip(insn(mnemonic, "rax", Imm(1, 8)))
    roundtrip(insn(mnemonic, "rax", Imm(5, 8)))
    roundtrip(insn(mnemonic, "r11d", Imm(31, 8)))
    roundtrip(insn(mnemonic, "rcx", Reg("cl")))


def test_push_pop_all_registers():
    for reg in REGS64:
        assert roundtrip(insn("push", reg)).operands == (reg,)
        assert roundtrip(insn("pop", reg)).operands == (reg,)


def test_unary_ops():
    for mnemonic in ("not", "neg", "mul", "div", "idiv"):
        roundtrip(insn(mnemonic, "rax"))
        roundtrip(insn(mnemonic, "r9"))
        roundtrip(insn(mnemonic, Mem(64, base="rbp", disp=-8)))
    decoded = roundtrip(insn("imul", "rdi"))
    assert decoded.mnemonic == "imul"


def test_movabs_roundtrip():
    decoded = roundtrip(insn("movabs", "rax", Imm(0xDEADBEEFCAFEBABE, 64)))
    assert decoded.operands[1].value == 0xDEADBEEFCAFEBABE
    # A small 64-bit mov immediate picks the C7 sign-extended form.
    small = insn("mov", "rax", Imm(5, 32))
    assert encode(small).hex() == "48c7c005000000"
    roundtrip(small)


# -- memory operand address-mode sweep ---------------------------------------

BASES = [None, "rax", "rbx", "rsp", "rbp", "r12", "r13", "rsi"]
INDEXES = [None, "rax", "rbp", "r9", "r13"]
DISPS = [0, 1, -1, 0x40, -0x40, 0x1234, -0x1234]


def iter_mems():
    for base in BASES:
        for index in INDEXES:
            for disp in (0, 0x40, 0x1234, -8):
                scale = 4 if index else 1
                yield Mem(64, base=base, index=index, scale=scale, disp=disp)
    yield Mem(64, base="rip", disp=0x2000)
    yield Mem(64, base="rip", disp=-16)
    yield Mem(32, disp=0x404000)


@pytest.mark.parametrize("mem", list(iter_mems()), ids=str)
def test_memory_operand_roundtrip(mem):
    decoded = roundtrip(insn("mov", "rcx", mem))
    got = decoded.operands[1]
    assert got.base == mem.base
    assert got.index == mem.index
    assert got.disp == mem.disp
    if mem.index:
        assert got.scale == mem.scale


# -- property-based round-trips ----------------------------------------------

reg64_st = st.sampled_from(REGS64)
reg32_st = st.sampled_from(REGS32)
reg8_st = st.sampled_from(REGS8)
imm32_st = st.integers(min_value=-(2**31), max_value=2**31 - 1).map(
    lambda v: Imm(v, 32)
)
mem_st = st.builds(
    Mem,
    width=st.sampled_from([8, 16, 32, 64]),
    base=st.sampled_from([None] + list(GPR64)),
    index=st.sampled_from([None] + [r for r in GPR64 if r != "rsp"]),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)


@settings(max_examples=300)
@given(
    mnemonic=st.sampled_from(sorted(ALU_OPS) + ["mov"]),
    dst=reg64_st,
    src=st.one_of(reg64_st, imm32_st),
)
def test_prop_alu_mov_reg_forms(mnemonic, dst, src):
    roundtrip(insn(mnemonic, dst, src))


@settings(max_examples=300)
@given(mnemonic=st.sampled_from(sorted(ALU_OPS) + ["mov"]), dst=reg64_st, mem=mem_st)
def test_prop_mem_source(mnemonic, dst, mem):
    mem64 = Mem(64, mem.base, mem.index, mem.scale, mem.disp)
    roundtrip(insn(mnemonic, dst, mem64))
    roundtrip(insn(mnemonic, mem64, dst))


@settings(max_examples=200)
@given(mem=mem_st, width_reg=st.sampled_from(REGS32 + REGS8))
def test_prop_mem_width_variants(mem, width_reg):
    sized = Mem(width_reg.width, mem.base, mem.index, mem.scale, mem.disp)
    roundtrip(insn("mov", width_reg, sized))
    roundtrip(insn("mov", sized, width_reg))


@settings(max_examples=200)
@given(
    disp=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    cc=st.sampled_from(CONDITION_CODES),
)
def test_prop_branches(disp, cc):
    roundtrip(insn("jmp", Imm(disp, 32)))
    roundtrip(insn("call", Imm(disp, 32)))
    roundtrip(insn(f"j{cc}", Imm(disp, 32)))


def test_decode_reports_unknown_bytes():
    from repro.isa import DecodeError

    with pytest.raises(DecodeError):
        decode(b"\x06")  # legacy push es: invalid in 64-bit mode
    with pytest.raises(DecodeError):
        decode(b"\x0f\xff")
    with pytest.raises(DecodeError):
        decode(b"\x48")  # bare REX prefix, truncated
