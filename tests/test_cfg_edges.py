"""CFG edge cases: empty blocks, single-block functions, self-loops,
unresolved indirect jumps, and the returns/exits classification."""

from __future__ import annotations

import pytest

from repro import lift
from repro.elf import BinaryBuilder
from repro.hoare.cfg import BasicBlock, build_cfg
from repro.isa import Imm, Mem
from repro.minicc import compile_source


# -- BasicBlock hardening (regression: empty blocks used to IndexError) --------


def test_empty_block_end_raises_value_error():
    block = BasicBlock(start=0x401000)
    with pytest.raises(ValueError, match="empty basic block at 0x401000"):
        block.end
    assert str(block) == "block 0x401000 <empty>"


def test_populated_block_end_and_str():
    block = BasicBlock(start=0x401000, addresses=[0x401000, 0x401004])
    assert block.end == 0x401004
    assert str(block) == "block 0x401000..0x401004 (2)"


# -- single-block functions ----------------------------------------------------


def test_single_block_function():
    builder = BinaryBuilder("tiny")
    t = builder.text
    t.label("main")
    t.emit("mov", "rax", "rdi")
    t.emit("ret")
    result = lift(builder.build(entry="main"))
    cfg = build_cfg(result)
    assert len(cfg.blocks) == 1
    (leader,) = cfg.blocks
    assert leader == result.entry
    assert cfg.blocks[leader].addresses == sorted(result.instructions)
    # No intra-block edges; the one block is a return block.
    assert cfg.edges == set()
    assert cfg.returns == {leader}
    assert cfg.exits == set()
    assert cfg.functions == {leader: {leader}}


# -- self-loop blocks ----------------------------------------------------------


def test_self_loop_block():
    builder = BinaryBuilder("spin")
    t = builder.text
    t.label("main")
    t.emit("mov", "rcx", Imm(5, 32))
    t.label("loop")
    t.emit("sub", "rcx", Imm(1, 32))
    t.emit("jne", "loop")
    t.emit("ret")
    result = lift(builder.build(entry="main"))
    cfg = build_cfg(result)
    loop_leaders = [src for (src, dst) in cfg.edges if src == dst]
    assert len(loop_leaders) == 1
    (loop,) = loop_leaders
    # The self-loop block is its own predecessor and successor.
    assert loop in cfg.successor_map()[loop]
    assert loop in cfg.predecessor_map()[loop]


# -- unresolved indirect jumps -------------------------------------------------


def test_unresolved_indirect_jump_block_has_no_successors():
    builder = BinaryBuilder("indirect")
    t = builder.text
    t.label("main")
    # rdi is arbitrary: the jump target cannot be resolved, which yields an
    # unsoundness annotation and ends exploration of that path.
    t.emit("jmp", "rdi")
    result = lift(builder.build(entry="main"))
    assert any(a.kind == "unresolved-jump" for a in result.annotations)
    cfg = build_cfg(result)
    leader = cfg.leader_of(result.entry)
    assert leader is not None
    assert cfg.successor_map()[leader] == ()
    assert leader not in cfg.returns and leader not in cfg.exits


# -- returns/exits classification ----------------------------------------------


def test_exit_block_classified_as_exit_not_return():
    builder = BinaryBuilder("bail")
    builder.extern("exit")
    t = builder.text
    t.label("main")
    t.emit("mov", "rdi", Imm(0, 32))
    t.emit("call", "exit")
    result = lift(builder.build(entry="main"))
    cfg = build_cfg(result)
    assert cfg.exits and not cfg.returns


def test_branchy_returns_classified():
    result = lift(compile_source(
        "long main(long n) { if (n > 0) return 1; return 2; }",
        name="branchy",
    ))
    cfg = build_cfg(result)
    assert cfg.returns
    for leader in cfg.returns:
        last = cfg.blocks[leader].end
        assert result.instructions[last].mnemonic == "ret"


# -- metadata accessors --------------------------------------------------------


@pytest.fixture(scope="module")
def two_fn_cfg():
    result = lift(compile_source(
        "long helper(long x) { return x + 1; }"
        "long main(long n) { return helper(n) * 2; }",
        name="twofn",
    ))
    return result, build_cfg(result)


def test_leader_and_function_of(two_fn_cfg):
    result, cfg = two_fn_cfg
    assert len(cfg.functions) == 2
    for entry, members in cfg.functions.items():
        for leader in members:
            assert cfg.function_of(leader) == entry
    for leader, block in cfg.blocks.items():
        for addr in block.addresses:
            assert cfg.leader_of(addr) == leader
    assert cfg.leader_of(0xDEAD_BEEF) is None
    assert cfg.function_of(0xDEAD_BEEF) is None


def test_successor_predecessor_maps_mirror_edges(two_fn_cfg):
    _, cfg = two_fn_cfg
    succs = cfg.successor_map()
    preds = cfg.predecessor_map()
    rebuilt = {(s, d) for s, dsts in succs.items() for d in dsts}
    assert rebuilt == cfg.edges
    mirrored = {(s, d) for d, srcs in preds.items() for s in srcs}
    assert mirrored == cfg.edges


def test_instructions_of_in_address_order(two_fn_cfg):
    result, cfg = two_fn_cfg
    for leader in cfg.blocks:
        instrs = cfg.instructions_of(leader, result)
        addrs = [i.addr for i in instrs]
        assert addrs == sorted(addrs)
        assert addrs == cfg.blocks[leader].addresses
