"""Assembler tests: labels, data directives, alignment, cross-references."""

from __future__ import annotations

import pytest

from repro.isa import Assembler, AssemblyError, Imm, Mem, abs32, abs64, decode


def test_forward_and_backward_labels():
    asm = Assembler(base=0x1000)
    asm.label("start")
    asm.emit("jmp", "end")          # forward reference
    asm.label("mid")
    asm.emit("nop")
    asm.emit("jmp", "mid")          # backward reference
    asm.label("end")
    asm.emit("ret")
    code = asm.assemble()
    # First jmp lands on `ret`.
    first = decode(code, 0, 0x1000)
    assert first.mnemonic == "jmp"
    assert first.end + first.operands[0].signed == asm.labels["end"]
    # Second jmp lands on `nop`.
    second = decode(code, asm.labels["mid"] + 1 - 0x1000,
                    asm.labels["mid"] + 1)
    assert second.end + second.operands[0].signed == asm.labels["mid"]


def test_undefined_label_raises():
    asm = Assembler()
    asm.emit("jmp", "nowhere")
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_quad_and_long_data():
    asm = Assembler(base=0)
    asm.label("a")
    asm.quad(0x1122334455667788)
    asm.long(0xAABBCCDD)
    code = asm.assemble()
    assert code[:8] == (0x1122334455667788).to_bytes(8, "little")
    assert code[8:12] == (0xAABBCCDD).to_bytes(4, "little")


def test_quad_with_label_reference():
    asm = Assembler(base=0x2000)
    asm.label("table")
    asm.quad(abs64("target"))
    asm.long(abs32("target", addend=4))
    asm.label("target")
    asm.emit("ret")
    code = asm.assemble()
    target = asm.labels["target"]
    assert int.from_bytes(code[:8], "little") == target
    assert int.from_bytes(code[8:12], "little") == target + 4


def test_alignment_pads_with_nops():
    asm = Assembler(base=0x1000)
    asm.emit("ret")                  # 1 byte
    asm.align(8)
    asm.label("aligned")
    asm.emit("nop")
    asm.assemble()
    assert asm.labels["aligned"] % 8 == 0


def test_raw_bytes_pass_through():
    asm = Assembler(base=0)
    asm.raw(bytes.fromhex("3dc3000000"))
    code = asm.assemble()
    assert code == bytes.fromhex("3dc3000000")


def test_abs64_in_movabs():
    asm = Assembler(base=0x400000)
    asm.emit("movabs", "rax", abs64("spot"))
    asm.label("spot")
    asm.emit("ret")
    code = asm.assemble()
    instr = decode(code, 0, 0x400000)
    assert instr.mnemonic == "movabs"
    assert instr.operands[1].value == asm.labels["spot"]


def test_register_string_vs_label_disambiguation():
    """`jmp rax` takes the register; `jmp out` takes the label."""
    asm = Assembler(base=0)
    asm.emit("jmp", "rax")
    asm.label("out")
    asm.emit("ret")
    code = asm.assemble()
    assert decode(code, 0).mnemonic == "jmp"
    from repro.isa import Reg

    assert decode(code, 0).operands[0] == Reg("rax")


def test_layout_is_stable_across_assemblies():
    asm = Assembler(base=0x3000)
    asm.label("f")
    asm.emit("call", "g")
    asm.emit("ret")
    asm.label("g")
    asm.emit("ret")
    first = asm.assemble()
    second = asm.assemble()
    assert first == second
