"""Printing symbolic expressions as Isabelle/HOL terms.

The target theory models machine words as ``64 word`` (Isabelle's
``Word`` library) and memory as ``64 word ⇒ 8 word``; ``read_mem`` performs
little-endian multi-byte reads of the *initial* memory, matching the
meaning of :class:`~repro.expr.Deref`.
"""

from __future__ import annotations

from repro.expr import App, Const, Deref, Expr, FlagRef, RegRef, Var

_OP_NAMES = {
    "add": "+", "sub": "-", "mul": "*",
    "and": "AND", "or": "OR", "xor": "XOR",
    "shl": "<<", "shr": ">>",
}

_FUN_NAMES = {
    "sar": "sshiftr", "udiv": "udiv64", "sdiv": "sdiv64",
    "urem": "urem64", "srem": "srem64",
}

_CMP_NAMES = {
    "eq": "=", "ltu": "<", "leu": "≤", "lts": "<s", "les": "≤s",
}


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        if ch.isalnum() or ch == "_":
            out.append(ch)
        else:
            out.append("_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "v" + text
    return text


def to_isabelle(expr: Expr) -> str:
    """Render *expr* as an Isabelle/HOL term string."""
    if isinstance(expr, Const):
        return f"({expr.value:#x} :: {expr.width} word)"
    if isinstance(expr, Var):
        return _sanitize(expr.name)
    if isinstance(expr, RegRef):
        return f"(reg σ ''{expr.name}'')"
    if isinstance(expr, FlagRef):
        return f"(flag σ ''{expr.name}'')"
    if isinstance(expr, Deref):
        return f"(read_mem mem₀ {to_isabelle(expr.addr)} {expr.size})"
    if isinstance(expr, App):
        return _app_to_isabelle(expr)
    raise TypeError(f"unknown expression {expr!r}")


def _app_to_isabelle(expr: App) -> str:
    op = expr.op
    args = [to_isabelle(arg) for arg in expr.args]
    if op in _OP_NAMES and len(expr.args) >= 2:
        joined = f" {_OP_NAMES[op]} ".join(args)
        return f"({joined})"
    if op in _FUN_NAMES:
        return f"({_FUN_NAMES[op]} {' '.join(args)})"
    if op in _CMP_NAMES:
        return f"(if {args[0]} {_CMP_NAMES[op]} {args[1]} then 1 else 0 :: 1 word)"
    if op == "not":
        return f"(NOT {args[0]})"
    if op == "neg":
        return f"(- {args[0]})"
    if op == "zext":
        return f"(ucast {args[0]} :: {expr.width} word)"
    if op == "sext":
        return f"(scast {args[0]} :: {expr.width} word)"
    if op == "low":
        return f"(ucast {args[0]} :: {expr.width} word)"
    if op == "ite":
        return f"(if {args[0]} = 1 then {args[1]} else {args[2]})"
    if op == "bool_not":
        return f"(1 - {args[0]})"
    if op == "bool_and":
        return f"({args[0]} AND {args[1]})"
    if op == "bool_or":
        return f"({args[0]} OR {args[1]})"
    if op == "parity":
        return f"(parity8 {args[0]})"
    return f"({op} {' '.join(args)})"
