"""Benchmark: regenerate Table 2 (CoreUtils → Isabelle export + validation).

Shape claims asserted against the paper:

* every program lifts with zero unresolved indirections (the paper's six
  CoreUtils binaries have none);
* every replayable Hoare triple is proven — no FAILED triples (paper:
  "Without exception, all Hoare triples could be proven automatically");
* the instruction-count ordering matches (tar > gzip > od > hexdump >
  du > wc), as does the zero-indirection status of wc;
* one lemma is exported per edge group, and the theory text is
  syntactically complete.
"""

from __future__ import annotations

import pytest

from repro.corpus import COREUTILS_SHAPES
from repro.eval.table2 import format_table2, generate_table2
from repro.export import check_triples, export_theory


def test_table2_benchmark(benchmark):
    rows, text = benchmark.pedantic(generate_table2, rounds=1, iterations=1)
    print()
    print(text)
    assert len(rows) == len(COREUTILS_SHAPES)


def test_all_programs_lift_cleanly(coreutils_results):
    for name, result in coreutils_results.items():
        assert result.verified, f"{name}: {result.errors}"
        assert result.stats.unresolved_jumps == 0, name
        assert result.stats.unresolved_calls == 0, name


def test_all_triples_proven(coreutils_results):
    for name, result in coreutils_results.items():
        report = check_triples(result, samples=3)
        assert report.failed == 0, f"{name}: {report.summary()}"
        assert report.proven > 0, name


def test_instruction_count_ordering_matches_paper(coreutils_results):
    counts = {name: result.stats.instructions
              for name, result in coreutils_results.items()}
    # Paper: tar 5730 > gzip 3465 > od 3040 > hexdump 2515 > du 883 > wc 445.
    assert counts["tar"] > counts["gzip"] > counts["od"] > counts["du"] \
        > counts["wc"]
    assert counts["hexdump"] > counts["du"]


def test_indirection_profile_matches_paper(coreutils_results):
    indirections = {name: result.stats.resolved_indirections
                    for name, result in coreutils_results.items()}
    assert indirections["wc"] == 0            # paper: wc has 0
    assert indirections["hexdump"] >= indirections["du"]
    assert indirections["od"] >= indirections["tar"]


def test_theories_export(coreutils_results):
    for name, result in coreutils_results.items():
        theory = export_theory(result)
        assert theory.startswith("theory ")
        assert theory.rstrip().endswith("end")
        groups = {(e.src, e.instr_addr) for e in result.graph.edges}
        assert theory.count("lemma hoare_") == len(groups)
