"""Bounded resolution of indirect control flow.

Given the symbolic value the instruction pointer takes after an indirect
jump/call/return, produce one of:

* a bounded set of concrete targets (jump table / function pointer);
* a *return* to a context-free call symbol;
* "unresolved" — the caller annotates (Algorithm 1, line 13).

Jump tables resolve when the table read's address is linear in a term the
predicate bounds (e.g. ``ja`` established ``idx ≤ 0xc3``) and the table
lives in non-writable memory — writable tables could change under our feet
and are never trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import Binary
from repro.expr import App, Const, Deref, Expr, Var, substitute
from repro.pred import Predicate
from repro.smt.linear import linearize

#: Naming convention for context-free return symbols (Section 4.2.2).
RETURN_SYMBOL_PREFIX = "ret@"


def return_symbol(function_entry: int) -> Var:
    return Var(f"{RETURN_SYMBOL_PREFIX}{function_entry:#x}")


def is_return_symbol(expr: Expr) -> bool:
    return isinstance(expr, Var) and expr.name.startswith(RETURN_SYMBOL_PREFIX)


def symbol_entry(expr: Var) -> int:
    return int(expr.name[len(RETURN_SYMBOL_PREFIX):], 16)


@dataclass
class Resolution:
    """Outcome of resolving an instruction-pointer expression."""

    kind: str  # "targets" | "return" | "unresolved"
    targets: list[int] = field(default_factory=list)
    symbol: Var | None = None
    detail: str = ""


def resolve_rip(
    rip: Expr | None,
    pred: Predicate,
    binary: Binary,
    max_targets: int = 1024,
) -> Resolution:
    """Resolve the post-instruction rip value to bounded control flow."""
    if rip is None:
        return Resolution("unresolved", detail="instruction pointer is ⊥")
    if isinstance(rip, Const):
        return Resolution("targets", targets=[rip.value])
    if is_return_symbol(rip):
        return Resolution("return", symbol=rip)

    derefs = [node for node in rip.walk() if isinstance(node, Deref)]
    if len(derefs) == 1:
        resolution = _resolve_table(rip, derefs[0], pred, binary, max_targets)
        if resolution is not None:
            return resolution
    if not derefs:
        # A bounded non-deref expression (rare): enumerate it directly.
        resolution = _enumerate_bounded(rip, pred, binary, max_targets)
        if resolution is not None:
            return resolution
    return Resolution("unresolved", detail=f"cannot bound rip = {rip}")


def _readable_table(binary: Binary, addr: int, size: int) -> int | None:
    section = binary.section_at(addr)
    if section is None or section.writable or addr + size > section.end:
        return None
    return int.from_bytes(binary.read(addr, size), "little")


def _substitute_concrete(rip: Expr, term: Expr | None, value: int,
                         binary: Binary) -> Expr:
    """Fix *term* to *value*, then fold constant-address derefs of
    non-writable memory down to their loaded constants."""
    def fix_term(node: Expr) -> Expr | None:
        if term is not None and node == term:
            return Const(value, term.width)
        return None

    fixed = substitute(rip, fix_term) if term is not None else rip

    def fold_deref(node: Expr) -> Expr | None:
        if isinstance(node, Deref) and isinstance(node.addr, Const):
            loaded = _readable_table(binary, node.addr.value, node.size)
            if loaded is not None:
                return Const(loaded, node.size * 8)
        return None

    return substitute(fixed, fold_deref)


def _resolve_table(
    rip: Expr, deref: Deref, pred: Predicate, binary: Binary, max_targets: int
) -> Resolution | None:
    linear = linearize(deref.addr)
    non_const = [(term, coeff) for term, coeff in linear.terms]
    if len(non_const) == 0:
        # Fixed-address pointer load (e.g. a global function pointer).
        folded = _substitute_concrete(rip, None, 0, binary)
        if isinstance(folded, Const):
            return Resolution("targets", targets=[folded.value])
        return None
    if len(non_const) != 1:
        return None
    term, coeff = non_const[0]
    interval = pred.interval_of(term)
    if interval is None:
        from repro.smt.intervals import from_width

        if term.width < 64:
            interval = from_width(term.width)
        elif isinstance(term, App) and term.op == "zext":
            inner_bound = pred.interval_of(term.args[0])
            interval = inner_bound or from_width(term.args[0].width)
        else:
            return None
    if interval.size() > max_targets:
        return None
    targets = []
    for index in range(interval.lo, interval.hi + 1):
        folded = _substitute_concrete(rip, term, index, binary)
        if not isinstance(folded, Const):
            return None
        targets.append(folded.value)
    return Resolution("targets", targets=sorted(set(targets)))


def _enumerate_bounded(
    rip: Expr, pred: Predicate, binary: Binary, max_targets: int
) -> Resolution | None:
    linear = linearize(rip)
    non_const = list(linear.terms)
    if len(non_const) != 1:
        return None
    term, _ = non_const[0]
    interval = pred.interval_of(term)
    if interval is None or interval.size() > max_targets:
        return None
    targets = []
    for value in range(interval.lo, interval.hi + 1):
        folded = _substitute_concrete(rip, term, value, binary)
        if not isinstance(folded, Const):
            return None
        targets.append(folded.value)
    return Resolution("targets", targets=sorted(set(targets)))
