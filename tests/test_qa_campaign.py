"""The qa mutation-campaign gates: kills, controls, and determinism.

Satellite (c) is the determinism contract: the quick campaign run twice
serially and twice with two worker processes must produce byte-identical
canonical reports.  The rest locks down the campaign's semantics — the
curated fault set is 100% killed, controls detect nothing, fault
injection is context-managed (uninstall restores the pristine pipeline),
and mutants re-encode to same-length patches.
"""

from __future__ import annotations

import pytest

from repro.hoare import lift
from repro.qa import (
    BATTERY,
    CURATED_MUTANTS,
    FAULTS,
    LAYERS,
    apply_mutation,
    build_target,
    build_trials,
    inject,
    run_campaign,
    target_names,
)
from repro.qa.campaign import BATTERY_FORMS, CURATED_FAULT_TRIALS
from repro.qa.diffsweep import forms
from repro.qa.mutants import text_instructions


@pytest.fixture(scope="module")
def quick_report():
    return run_campaign("quick", seed=2022, jobs=1)


# -- the campaign gates -------------------------------------------------------


def test_quick_campaign_kills_every_curated_fault(quick_report):
    missed = [r.name for r in quick_report.missed]
    assert quick_report.kill_rate == 1.0, f"missed: {missed}"


def test_quick_campaign_has_no_false_positives(quick_report):
    wrong = [(r.name, r.killed_by) for r in quick_report.false_positives]
    assert not wrong, f"controls/survivors tripped detectors: {wrong}"


def test_quick_campaign_gate_ok(quick_report):
    assert quick_report.gate_ok


def test_kills_are_attributed_to_detectors(quick_report):
    for result in quick_report.results:
        if result.killed:
            assert result.killed_by in ("lift", "sanity", "triples",
                                        "lint", "differential")
        else:
            assert result.killed_by == ""


def test_every_layer_is_exercised_by_the_curated_set():
    layers = {FAULTS[fault].layer for fault, _ in CURATED_FAULT_TRIALS}
    assert layers == set(LAYERS)


def test_curated_set_spans_detectors(quick_report):
    killers = {r.killed_by for r in quick_report.results
               if r.killed and r.kind == "fault"}
    assert {"lift", "triples", "differential"} <= killers


# -- determinism (satellite c) ------------------------------------------------


def test_campaign_reports_are_deterministic_and_jobs_invariant(quick_report):
    serial_again = run_campaign("quick", seed=2022, jobs=1)
    parallel_one = run_campaign("quick", seed=2022, jobs=2)
    parallel_two = run_campaign("quick", seed=2022, jobs=2)
    reference = quick_report.canonical_json()
    assert serial_again.canonical_json() == reference
    assert parallel_one.canonical_json() == reference
    assert parallel_two.canonical_json() == reference


def test_campaign_seed_changes_are_reported():
    other = run_campaign("quick", seed=3, jobs=1)
    assert other.canonical()["seed"] == 3


# -- fault registry mechanics -------------------------------------------------


def test_fault_registry_covers_all_layers():
    assert {fault.layer for fault in FAULTS.values()} == set(LAYERS)
    assert len(FAULTS) >= 9


def test_inject_is_context_managed_and_restores():
    binary = build_target("scratch")
    before = lift(binary)
    assert before.verified
    with inject("tau-add-imm-off-by-one"):
        pass  # enter/exit only
    after = lift(binary)
    assert after.verified
    assert len(after.graph.vertices) == len(before.graph.vertices)


def test_inject_unknown_fault_raises():
    with pytest.raises(KeyError):
        with inject("no-such-fault"):
            pass


def test_battery_forms_are_real_form_names():
    names = {form.name for form in forms()}
    assert set(BATTERY_FORMS) <= names


# -- trials and targets -------------------------------------------------------


def test_build_trials_quick_structure():
    trials = build_trials("quick")
    names = [t.name for t in trials]
    assert len(names) == len(set(names))
    kinds = {t.kind for t in trials}
    assert kinds == {"control", "fault", "mutant"}
    controls = [t for t in trials if t.kind == "control"]
    assert len(controls) == len(target_names()) + 1  # + battery


def test_build_trials_full_is_superset():
    quick = {t.name for t in build_trials("quick")}
    full = {t.name for t in build_trials("full")}
    assert quick < full


def test_build_trials_rejects_unknown_campaign():
    with pytest.raises(ValueError):
        build_trials("nightly")


def test_targets_build_and_curated_mutants_encode():
    for name in target_names():
        binary = build_target(name)
        assert binary.section_at(binary.entry) is not None
    for spec in CURATED_MUTANTS:
        base = build_target(spec.target)
        mutant = apply_mutation(base, spec)
        assert mutant is not None, spec.name
        # Same-length patch: layout identical, exactly one instruction
        # differs.
        base_instrs = text_instructions(base)
        mutant_instrs = text_instructions(mutant)
        assert [i.addr for i in base_instrs] == [i.addr for i in mutant_instrs]
        differing = [i for i, (x, y) in enumerate(zip(base_instrs,
                                                      mutant_instrs))
                     if str(x) != str(y)]
        assert differing == [spec.index]


def test_battery_pseudo_target_is_in_quick_controls():
    trials = build_trials("quick")
    assert any(t.target == BATTERY and t.kind == "control" for t in trials)
