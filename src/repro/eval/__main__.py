"""CLI: ``python -m repro.eval <table1|table2|figure3|failures|all>``."""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures on the "
                    "synthetic corpus.",
    )
    parser.add_argument("what", choices=["table1", "table2", "figure3",
                                         "failures", "scaling", "lint", "all"])
    parser.add_argument("--scale", type=int, default=1,
                        help="corpus scale factor (default 1)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-binary lifting timeout in seconds")
    args = parser.parse_args(argv)

    if args.what in ("table1", "all"):
        from repro.eval.table1 import generate_table1

        _, text = generate_table1(scale=args.scale,
                                  timeout_seconds=args.timeout)
        print(text)
    if args.what in ("table2", "all"):
        from repro.eval.table2 import generate_table2

        _, text = generate_table2()
        print(text)
    if args.what in ("figure3", "all"):
        from repro.eval.figure3 import generate_figure3

        _, text = generate_figure3(scale=args.scale,
                                   timeout_seconds=args.timeout)
        print(text)
    if args.what == "scaling":
        from repro.eval.scaling import format_scaling, run_scaling

        print(format_scaling(run_scaling(timeout_seconds=args.timeout)))
    if args.what == "lint":
        from repro.eval.lint_report import generate_lint_report

        print(generate_lint_report(scale=args.scale,
                                   timeout_seconds=args.timeout))
    if args.what in ("failures", "all"):
        from repro.eval.failures_report import generate_failures_report

        print(generate_failures_report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
