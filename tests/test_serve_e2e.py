"""End-to-end: real daemon, real workers, real sockets, real ELFs.

The service must be a *pure transport* around the library: the same
binary lifted through the daemon yields the same record as a direct
call, and a whole corpus run through the pooled server reproduces the
direct serial report byte-for-byte (determinism comes from the state
cap, which is exact, not from wall-clock timeouts, which are not).

Also under test: the content-addressed dedup fast paths (store answers
and in-flight follower attachment), tenant namespacing, the watch
stream's schema, cancellation, SIGTERM draining of a real subprocess,
and the ``python -m repro client`` verb set.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.elf import save_binary
from repro.obs.progress import validate_progress_obj
from repro.qa.targets import build_target
from repro.serve import (
    JobError,
    ServeClient,
    ServeError,
    Server,
    ServerConfig,
)
from repro.serve.cli import client_main

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

#: Generous wall budget + tight state cap: every outcome is decided by
#: the (deterministic) state cap, never by the wall clock.
_OPTIONS = {"timeout_seconds": 30.0, "max_states": 2000}


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-e2e")
    config = ServerConfig(socket_path=str(tmp / "s.sock"), workers=2,
                          cache=True, cache_dir=str(tmp / "store"),
                          allow_chaos=True, retry_base=0.02,
                          default_timeout_seconds=30.0,
                          default_max_states=2000)
    server = Server(config)
    server.start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def loop_elf(tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("elves") / "loop.elf")
    save_binary(build_target("loop"), path)
    return path


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.config.socket_path, timeout=120.0) as c:
        yield c


def _block_workers(client, seconds=2.0):
    """Occupy both workers with chaos sleeps; returns their job ids."""
    return [client.submit({"kind": "chaos", "action": "sleep",
                           "seconds": seconds})["job_id"]
            for _ in range(2)]


# -- lift jobs and dedup ---------------------------------------------------

def test_lift_job_completes_with_a_real_record(client, loop_elf):
    submitted = client.submit_lift(loop_elf, options=_OPTIONS)
    assert submitted["source"] == "worker"
    status = client.wait(submitted["job_id"], timeout=120)
    assert status["state"] == "done"
    assert status["metrics"]["instructions"] > 0
    result = client.result(submitted["job_id"])["result"]
    assert result["outcome"] == "lifted"
    record = result["record"]
    assert record["name"] == "loop.elf"
    assert record["instructions"] > 0 and record["states"] > 0


def test_duplicate_lift_is_answered_from_the_store(client, loop_elf):
    # A distinct option set gives this test its own dedup key.
    options = {"timeout_seconds": 30.0, "max_states": 1500}
    first = client.submit_lift(loop_elf, options=options)
    client.wait(first["job_id"], timeout=120)
    duplicate = client.submit_lift(loop_elf, options=options)
    # Answered synchronously in the submit call: no queueing, no worker.
    assert duplicate["state"] == "done"
    assert duplicate["source"] == "store"
    original = client.result(first["job_id"])["result"]
    served = client.result(duplicate["job_id"])["result"]
    assert served["record"] == original["record"]
    assert served["source"] == "store"
    assert client.stats()["dedup"]["store_answers"] >= 1


def test_inflight_duplicate_attaches_as_follower(client, loop_elf):
    blockers = _block_workers(client)
    options = {"timeout_seconds": 30.0, "max_states": 1700}
    primary = client.submit_lift(loop_elf, options=options)
    follower = client.submit_lift(loop_elf, options=options)
    assert follower["source"] == "inflight"
    assert follower["primary"] == primary["job_id"]
    assert follower["job_id"] != primary["job_id"]
    for job_id in blockers:
        client.wait(job_id, timeout=120)
    assert client.wait(primary["job_id"], timeout=120)["state"] == "done"
    assert client.wait(follower["job_id"], timeout=120)["state"] == "done"
    # The follower carries the primary's result verbatim — it never
    # occupied a worker.
    first = client.result(primary["job_id"])["result"]
    second = client.result(follower["job_id"])["result"]
    assert first["record"] == second["record"]
    assert client.stats()["dedup"]["inflight_attach"] >= 1


def test_engines_never_alias_in_the_dedup_layer(client, loop_elf):
    # Same binary, same budgets, different transfer engine: the lift key
    # folds the engine, so a uop lift is NOT answered from the tau store
    # entry (or vice versa) — each engine gets its own worker run and its
    # own store entry, and the two records agree on the verdict.
    options = {"timeout_seconds": 30.0, "max_states": 1900}
    tau = client.submit_lift(loop_elf, options={**options, "engine": "tau"})
    client.wait(tau["job_id"], timeout=120)
    uop = client.submit_lift(loop_elf, options={**options, "engine": "uop"})
    assert uop["source"] == "worker"      # not a store answer
    client.wait(uop["job_id"], timeout=120)
    tau_result = client.result(tau["job_id"])["result"]
    uop_result = client.result(uop["job_id"])["result"]
    assert uop_result["source"] == "worker"
    assert tau_result["outcome"] == uop_result["outcome"] == "lifted"
    assert (tau_result["record"]["instructions"]
            == uop_result["record"]["instructions"])
    # Replaying each engine now hits its own store entry.
    tau_again = client.submit_lift(loop_elf,
                                   options={**options, "engine": "tau"})
    uop_again = client.submit_lift(loop_elf,
                                   options={**options, "engine": "uop"})
    assert tau_again["source"] == "store"
    assert uop_again["source"] == "store"
    assert (client.result(uop_again["job_id"])["result"]["record"]
            == uop_result["record"])


def test_unknown_engine_is_a_schema_error(client, loop_elf):
    from repro.serve.protocol import ProtocolError

    # Caught client-side: the shared schema rejects unknown engines
    # before the request ever reaches the socket.
    with pytest.raises(ProtocolError) as err:
        client.submit_lift(loop_elf, options={"engine": "jit"})
    assert err.value.code == "bad-job"


def test_tenants_cannot_see_each_others_jobs(daemon, loop_elf):
    with ServeClient(daemon.config.socket_path, tenant="acme",
                     timeout=120.0) as acme:
        submitted = acme.submit_lift(loop_elf, options=_OPTIONS)
        acme.wait(submitted["job_id"], timeout=120)
        assert acme.status(submitted["job_id"])["tenant"] == "acme"
    with ServeClient(daemon.config.socket_path, tenant="rival",
                     timeout=120.0) as rival:
        for op in (rival.status, rival.result, rival.cancel):
            with pytest.raises(JobError) as excinfo:
                op(submitted["job_id"])
            assert excinfo.value.code == "unknown-job"


# -- corpus determinism ----------------------------------------------------

def test_corpus_via_server_matches_direct_run_byte_for_byte(client):
    from repro.eval.runner import run_corpus

    options = {"timeout_seconds": 30.0, "max_states": 100}
    direct = run_corpus(scale=1, jobs=1, cache=False,
                        timeout_seconds=options["timeout_seconds"],
                        max_states=options["max_states"])
    submitted = client.submit_corpus(scale=1, cache=False, options=options)
    status = client.wait(submitted["job_id"], timeout=300)
    assert status["state"] == "done"
    result = client.result(submitted["job_id"])["result"]
    assert result["canonical_json"] == direct.canonical_json()
    assert status["units_total"] == len(direct.records)
    assert status["units_done"] == len(direct.records)


# -- watch stream ----------------------------------------------------------

def test_watch_stream_is_schema_valid_and_gap_free(client):
    submitted = client.submit({"kind": "chaos", "action": "sleep",
                               "seconds": 0.05})
    events: list[dict] = []
    final = client.watch(submitted["job_id"], on_event=events.append)
    assert final["state"] == "done"
    for event in events:
        validate_progress_obj(event)
    assert [event["seq"] for event in events] == list(range(len(events)))
    kinds = [event["kind"] for event in events]
    assert kinds[0] == "job_queued"
    assert "job_started" in kinds
    assert kinds[-1] == "job_finished"
    assert events[-1]["source"] == "worker"


# -- cancellation ----------------------------------------------------------

def test_cancel_queued_job_before_it_runs(client):
    blockers = _block_workers(client)
    queued = client.submit({"kind": "chaos", "action": "sleep",
                            "seconds": 0.01})
    response = client.cancel(queued["job_id"])
    assert response["cancelled"] is True
    assert client.status(queued["job_id"])["state"] == "cancelled"
    # Cancelling a finished job is a no-op, reported as such.
    again = client.cancel(queued["job_id"])
    assert again["cancelled"] is False
    for job_id in blockers:
        client.wait(job_id, timeout=120)


def test_cancel_running_job_kills_the_worker(client):
    submitted = client.submit({"kind": "chaos", "action": "sleep",
                               "seconds": 60.0})
    deadline_status = client.status(submitted["job_id"])
    response = client.cancel(submitted["job_id"])
    assert response["cancelled"] is True
    status = client.wait(submitted["job_id"], timeout=120)
    assert status["state"] == "cancelled"
    assert deadline_status["state"] in ("queued", "running")


# -- stats -----------------------------------------------------------------

def test_stats_reflect_the_module_so_far(client):
    stats = client.stats()
    assert stats["state"] == "serving"
    assert stats["workers"]["size"] == 2
    assert stats["cache"]["enabled"] is True
    assert stats["cache"]["entries"] >= 1          # lifts were stored
    assert stats["jobs"]["submitted"] >= 5
    assert stats["jobs"]["by_tenant"]["default"] >= 4
    assert stats["queue"]["depth"] == 0            # nothing left behind


# -- SIGTERM drain of a real subprocess ------------------------------------

def test_sigterm_drains_a_real_daemon_subprocess(tmp_path):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    socket_path = str(tmp_path / "d.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--workers", "1", "--no-cache", "--allow-chaos"],
        cwd=repo, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    try:
        banner = proc.stdout.readline()
        assert "listening on" in banner
        with ServeClient(socket_path, timeout=60.0) as client:
            assert client.ping()["ok"] is True
            job = client.submit({"kind": "chaos", "action": "sleep",
                                 "seconds": 0.2})
            proc.send_signal(signal.SIGTERM)
            # Draining: the in-flight job still finishes.  The daemon may
            # exit (closing our socket) between the job finishing and our
            # next poll; exit code 0 below still proves the drain finished
            # the job, because a drain that force-fails work exits 1.
            try:
                assert (client.wait(job["job_id"], timeout=60)["state"]
                        == "done")
            except ServeError:
                pass
        assert proc.wait(timeout=60) == 0
        remainder = proc.stdout.read()
        assert "drained, exit 0" in remainder
        assert not os.path.exists(socket_path)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


# -- the client CLI --------------------------------------------------------

def _cli(daemon, *argv) -> list[str]:
    return ["--socket", daemon.config.socket_path, *argv]


def test_client_cli_ping_and_stats(daemon, capsys):
    assert client_main(_cli(daemon, "ping")) == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True
    assert client_main(_cli(daemon, "stats")) == 0
    assert json.loads(capsys.readouterr().out)["stats"]["state"] == "serving"


def test_client_cli_submit_wait_roundtrip(daemon, capsys):
    code = client_main(_cli(daemon, "submit-chaos", "sleep",
                            "--seconds", "0.01", "--wait"))
    assert code == 0
    response = json.loads(capsys.readouterr().out)
    assert response["job"]["state"] == "done"
    assert response["result"]["chaos"]["chaos"] == "slept"


def test_client_cli_structured_error_exits_1(daemon, capsys):
    assert client_main(_cli(daemon, "status", "j-999999")) == 1
    response = json.loads(capsys.readouterr().out)
    assert response["ok"] is False
    assert response["error"]["code"] == "unknown-job"


def test_client_cli_transport_error_exits_2(tmp_path, capsys):
    code = client_main(["--socket", str(tmp_path / "nobody-home.sock"),
                        "ping"])
    assert code == 2
    assert "error:" in capsys.readouterr().err
