"""Predicates: clauses, flag state, valuations, range-abstraction join."""

from repro.pred.clause import Clause, clause_interval, intersect_intervals
from repro.pred.flags import FlagState, condition_clause
from repro.pred.predicate import Predicate, join_predicates, less_abstract

__all__ = [
    "Clause", "clause_interval", "intersect_intervals",
    "FlagState", "condition_clause",
    "Predicate", "join_predicates", "less_abstract",
]
