"""The daemon's priority job queue.

Semantics (the properties the hypothesis suite pins down):

* **priority ordering** — higher ``priority`` pops first;
* **FIFO within a class** — equal priorities pop in push order;
* **cancellation is exact** — ``cancel(unit_id)`` removes that unit and
  nothing else, whether it is buried mid-heap or next in line;
* **no loss, no duplication** — every pushed unit is popped exactly once
  or cancelled exactly once, under any interleaving of operations.

Implementation: a heap of ``(-priority, seq, unit_id)`` entries with lazy
deletion — ``cancel`` marks the id and ``pop`` skips dead entries — the
standard ``heapq`` pattern.  ``seq`` is a monotonic push counter, which
both breaks priority ties FIFO and makes entries totally ordered (ids
never reach the comparison).

The queue itself is not locked; the server serializes access under its
own mutex, and the property tests drive it single-threaded through
randomized operation sequences.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator


class PriorityJobQueue:
    def __init__(self) -> None:
        self._heap: list[tuple[int, int, str]] = []
        self._units: dict[str, Any] = {}
        self._priorities: dict[str, int] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._units)

    def __contains__(self, unit_id: str) -> bool:
        return unit_id in self._units

    def push(self, unit_id: str, unit: Any, priority: int = 0) -> None:
        """Enqueue *unit* under *unit_id*.  Re-pushing a pending id is a
        bug in the caller (it would double-schedule the unit)."""
        if unit_id in self._units:
            raise ValueError(f"unit {unit_id!r} is already queued")
        self._units[unit_id] = unit
        self._priorities[unit_id] = priority
        heapq.heappush(self._heap, (-priority, self._seq, unit_id))
        self._seq += 1

    def pop(self) -> tuple[str, Any] | None:
        """The highest-priority, oldest pending unit, or ``None``."""
        while self._heap:
            _, _, unit_id = heapq.heappop(self._heap)
            unit = self._units.pop(unit_id, None)
            if unit is not None:
                del self._priorities[unit_id]
                return unit_id, unit
        return None

    def cancel(self, unit_id: str) -> Any | None:
        """Remove *unit_id* if pending; returns its unit or ``None``.

        The heap entry stays behind as a tombstone that ``pop`` skips."""
        unit = self._units.pop(unit_id, None)
        if unit is not None:
            del self._priorities[unit_id]
        return unit

    def peek_priority(self, unit_id: str) -> int | None:
        return self._priorities.get(unit_id)

    def pending(self) -> Iterator[str]:
        """Pending unit ids in pop order (non-destructive)."""
        for _, _, unit_id in sorted(self._heap):
            if unit_id in self._units:
                yield unit_id

    def depth_by_priority(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for priority in self._priorities.values():
            out[priority] = out.get(priority, 0) + 1
        return dict(sorted(out.items(), reverse=True))
