"""τ-vs-emulator differential forms: one per supported mnemonic/operand shape.

Lemma 4.5's hypothesis is that every concrete transition is covered by some
symbolic successor.  The existing differential tests check this on a
handful of hand-written programs; this module *enumerates* the supported
instruction set — every mnemonic family and operand form the assembler,
decoder, τ and the emulator agree to support — and builds one tiny program
per form.  Each program is run in lockstep (concrete CPU step, symbolic τ
step, relation ``R`` checked), so any drift between
:mod:`repro.semantics.tau` and :mod:`repro.machine.cpu` fails naming the
exact instruction that diverged.

Forms that set flags append a ``setcc`` materialization block: flag
predicates are only indirectly observable through branches and ``setcc``
values, so turning each interesting condition into a register value makes
flag bugs (e.g. an inverted carry) visible to the relation check.

The same battery is the ``differential`` detector of the qa campaigns: an
injected emulator or τ fault shows up as a list of failing form names.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.elf import Binary, BinaryBuilder
from repro.expr import App, EvalEnv, Var, evaluate
from repro.isa import Imm, Mem, insn
from repro.isa.instruction import (
    ALU_OPS,
    CONDITION_CODES,
    SHIFT_OPS,
    STRING_OPS,
)
from repro.machine import CPU
from repro.machine.cpu import _SENTINEL_RETURN
from repro.memmodel import model_holds
from repro.semantics import (
    LiftContext,
    RetEvent,
    TerminalEvent,
    initial_state,
    step,
)

MASK64 = (1 << 64) - 1

#: Flags materialized after flag-setting forms: zero, carry, signed-less,
#: sign.  Written to high scratch registers the forms themselves never use.
_MATERIALIZE = (("e", "r10b"), ("b", "r11b"), ("l", "r12b"), ("s", "r13b"))


@dataclass(frozen=True)
class Form:
    """One mnemonic/operand shape: a builder for a tiny two-sided program.

    ``build(rng)`` returns ``(instructions, regs)`` — the body (a trailing
    ``ret`` is appended automatically) and the initial register values.
    """

    name: str
    kind: str
    build: Callable[[random.Random], tuple[list, dict[str, int]]]


def _arg(rng: random.Random) -> int:
    """A mixed-magnitude 64-bit operand value."""
    return rng.choice([
        rng.randrange(0, 256),
        rng.randrange(0, 1 << 31),
        rng.getrandbits(64),
        (1 << 64) - rng.randrange(1, 1 << 16),   # negative-ish
    ])


def _flagged(body: list) -> list:
    """Append the setcc materialization block to a flag-setting body."""
    return body + [insn(f"set{cc}", reg) for cc, reg in _MATERIALIZE]


def _forms() -> list[Form]:
    forms: list[Form] = []

    def add(name: str, kind: str, build) -> None:
        forms.append(Form(name, kind, build))

    # -- ALU family: every mnemonic in the 00-3B opcode rows ------------------
    for mnemonic in sorted(ALU_OPS):
        def alu_rr(rng, m=mnemonic):
            return _flagged([
                insn("mov", "rax", "rdi"),
                insn(m, "rax", "rsi"),
            ]), {"rdi": _arg(rng), "rsi": _arg(rng)}

        def alu_r32(rng, m=mnemonic):
            return _flagged([
                insn("mov", "eax", "edi"),
                insn(m, "eax", "esi"),
            ]), {"rdi": _arg(rng), "rsi": _arg(rng)}

        def alu_imm8(rng, m=mnemonic):
            return _flagged([
                insn("mov", "rax", "rdi"),
                insn(m, "rax", Imm(rng.randrange(1, 128), 8)),
            ]), {"rdi": _arg(rng)}

        def alu_imm32(rng, m=mnemonic):
            return _flagged([
                insn("mov", "rax", "rdi"),
                insn(m, "rax", Imm(rng.randrange(1 << 8, 1 << 31), 32)),
            ]), {"rdi": _arg(rng)}

        # The trailing pop rebalances the stack before ret without
        # touching flags, so the setcc block still sees the ALU result.
        def alu_load(rng, m=mnemonic):
            return _flagged([
                insn("push", "rsi"),
                insn("mov", "rax", "rdi"),
                insn(m, "rax", Mem(64, base="rsp")),
                insn("pop", "rcx"),
            ]), {"rdi": _arg(rng), "rsi": _arg(rng)}

        def alu_store(rng, m=mnemonic):
            return _flagged([
                insn("push", "rdi"),
                insn(m, Mem(64, base="rsp"), "rsi"),
                insn("mov", "rax", Mem(64, base="rsp")),
                insn("pop", "rcx"),
            ]), {"rdi": _arg(rng), "rsi": _arg(rng)}

        add(f"{mnemonic}-r64-r64", "alu", alu_rr)
        add(f"{mnemonic}-r32-r32", "alu", alu_r32)
        add(f"{mnemonic}-r64-imm8", "alu", alu_imm8)
        add(f"{mnemonic}-r64-imm32", "alu", alu_imm32)
        add(f"{mnemonic}-r64-m64", "alu", alu_load)
        if mnemonic not in ("cmp", "test"):
            add(f"{mnemonic}-m64-r64", "alu", alu_store)

    # -- shifts and rotates ---------------------------------------------------
    for mnemonic in sorted(SHIFT_OPS):
        def shift_imm(rng, m=mnemonic):
            return _flagged([
                insn("mov", "rax", "rdi"),
                insn(m, "rax", Imm(rng.randrange(1, 64), 8)),
            ]), {"rdi": _arg(rng)}

        add(f"{mnemonic}-r64-imm8", "shift", shift_imm)
        if mnemonic in ("shl", "shr", "sar"):
            def shift_cl(rng, m=mnemonic):
                return _flagged([
                    insn("mov", "rax", "rdi"),
                    insn("mov", "rcx", "rsi"),
                    insn(m, "rax", "cl"),
                ]), {"rdi": _arg(rng), "rsi": rng.randrange(0, 64)}

            add(f"{mnemonic}-r64-cl", "shift", shift_cl)

    # -- unary group ----------------------------------------------------------
    for mnemonic in ("inc", "dec", "neg", "not"):
        def unary(rng, m=mnemonic):
            body = [insn("mov", "rax", "rdi"), insn(m, "rax")]
            return (body if m == "not" else _flagged(body)), \
                {"rdi": _arg(rng)}

        add(f"{mnemonic}-r64", "unary", unary)

    # -- multiply / divide ----------------------------------------------------
    def imul2(rng):
        return [insn("mov", "rax", "rdi"), insn("imul", "rax", "rsi")], \
            {"rdi": _arg(rng), "rsi": _arg(rng)}

    def imul3(rng):
        return [insn("imul", "rax", "rdi", Imm(rng.randrange(2, 100), 8))], \
            {"rdi": _arg(rng)}

    def mul1(rng):
        return [insn("mov", "rax", "rdi"), insn("mul", "rsi")], \
            {"rdi": _arg(rng), "rsi": _arg(rng)}

    def imul1(rng):
        return [insn("mov", "rax", "rdi"), insn("imul", "rsi")], \
            {"rdi": _arg(rng), "rsi": _arg(rng)}

    def div(rng):
        return [insn("mov", "rax", "rdi"), insn("xor", "rdx", "rdx"),
                insn("div", "rsi")], \
            {"rdi": _arg(rng), "rsi": rng.randrange(1, 1 << 32)}

    def idiv(rng):
        return [insn("mov", "rax", "rdi"), insn("cqo"), insn("idiv", "rsi")], \
            {"rdi": rng.randrange(0, 1 << 62), "rsi": rng.randrange(1, 1 << 31)}

    add("imul-r64-r64", "muldiv", imul2)
    add("imul-r64-r64-imm8", "muldiv", imul3)
    add("mul-r64", "muldiv", mul1)
    add("imul-r64", "muldiv", imul1)
    add("div-r64", "muldiv", div)
    add("idiv-r64", "muldiv", idiv)

    # -- moves and extensions -------------------------------------------------
    def mov_rr(rng):
        return [insn("mov", "rax", "rdi")], {"rdi": _arg(rng)}

    def mov_imm32(rng):
        return [insn("mov", "eax", Imm(rng.getrandbits(31), 32))], {}

    def movabs(rng):
        return [insn("movabs", "rax", Imm(rng.getrandbits(64), 64))], {}

    def mov_load(rng):
        return [insn("push", "rdi"), insn("mov", "rax", Mem(64, base="rsp")),
                insn("pop", "rcx")], \
            {"rdi": _arg(rng)}

    def mov_store(rng):
        return [insn("push", "rsi"),
                insn("mov", Mem(64, base="rsp"), "rdi"),
                insn("mov", "rax", Mem(64, base="rsp")),
                insn("pop", "rcx")], \
            {"rdi": _arg(rng), "rsi": _arg(rng)}

    def mov_store_imm(rng):
        return [insn("push", "rsi"),
                insn("mov", Mem(64, base="rsp"), Imm(rng.getrandbits(31), 32)),
                insn("mov", "rax", Mem(64, base="rsp")),
                insn("pop", "rcx")], \
            {"rsi": _arg(rng)}

    def movzx(rng):
        return [insn("mov", "rax", "rdi"), insn("movzx", "rcx", "al")], \
            {"rdi": _arg(rng)}

    def movsx(rng):
        return [insn("mov", "rax", "rdi"), insn("movsx", "rcx", "al")], \
            {"rdi": _arg(rng)}

    def movsxd(rng):
        return [insn("movsxd", "rax", "edi")], {"rdi": _arg(rng)}

    def lea(rng):
        return [insn("lea", "rax",
                     Mem(64, base="rdi", index="rsi", scale=rng.choice([1, 2, 4, 8]),
                         disp=rng.randrange(-64, 64)))], \
            {"rdi": _arg(rng), "rsi": rng.randrange(0, 1 << 16)}

    def xchg(rng):
        return [insn("xchg", "rdi", "rsi"), insn("mov", "rax", "rdi")], \
            {"rdi": _arg(rng), "rsi": _arg(rng)}

    add("mov-r64-r64", "mov", mov_rr)
    add("mov-r32-imm32", "mov", mov_imm32)
    add("movabs-r64-imm64", "mov", movabs)
    add("mov-r64-m64", "mov", mov_load)
    add("mov-m64-r64", "mov", mov_store)
    add("mov-m64-imm32", "mov", mov_store_imm)
    add("movzx-r64-r8", "mov", movzx)
    add("movsx-r64-r8", "mov", movsx)
    add("movsxd-r64-r32", "mov", movsxd)
    add("lea-r64-m", "mov", lea)
    add("xchg-r64-r64", "mov", xchg)

    # -- stack ----------------------------------------------------------------
    def push_pop(rng):
        return [insn("push", "rdi"), insn("pop", "rax")], {"rdi": _arg(rng)}

    def push_imm(rng):
        return [insn("push", Imm(rng.randrange(0, 1 << 31), 32)),
                insn("pop", "rax")], {}

    def frame(rng):
        return [insn("push", "rbp"), insn("mov", "rbp", "rsp"),
                insn("sub", "rsp", Imm(32, 32)),
                insn("mov", Mem(64, base="rbp", disp=-8), "rdi"),
                insn("mov", "rax", Mem(64, base="rbp", disp=-8)),
                insn("leave")], {"rdi": _arg(rng)}

    add("push-pop-r64", "stack", push_pop)
    add("push-imm32", "stack", push_imm)
    add("leave-frame", "stack", frame)

    # -- rax extensions -------------------------------------------------------
    for mnemonic in ("cdq", "cqo", "cdqe"):
        def ext(rng, m=mnemonic):
            return [insn("mov", "rax", "rdi"), insn(m)], {"rdi": _arg(rng)}

        add(f"{mnemonic}", "extend", ext)

    # -- conditions: setcc, cmovcc, jcc over every condition code -------------
    for cc in CONDITION_CODES:
        def setcc(rng, c=cc):
            return [insn("cmp", "rdi", "rsi"), insn(f"set{c}", "al"),
                    insn("movzx", "rax", "al")], \
                {"rdi": _arg(rng), "rsi": _arg(rng), "rax": 0}

        def cmovcc(rng, c=cc):
            return [insn("mov", "rax", "rdi"), insn("cmp", "rdi", "rsi"),
                    insn(f"cmov{c}", "rax", "rsi")], \
                {"rdi": _arg(rng), "rsi": _arg(rng)}

        add(f"set{cc}-r8", "setcc", setcc)
        add(f"cmov{cc}-r64-r64", "cmovcc", cmovcc)

    # jcc forms are built with labels (both paths return).
    for cc in CONDITION_CODES:
        def jcc(rng, c=cc):
            return ("branch", c), \
                {"rdi": _arg(rng), "rsi": _arg(rng)}

        add(f"j{cc}-rel", "jcc", jcc)

    # -- string operations ----------------------------------------------------
    for mnemonic in sorted(STRING_OPS):
        def string_op(rng, m=mnemonic):
            body = [
                insn("sub", "rsp", Imm(256, 32)),
                insn("mov", "rdi", "rsp"),
                insn("lea", "rsi", Mem(64, base="rsp", disp=128)),
                insn("mov", Mem(64, base="rsp", disp=128), "rdx"),
            ]
            if m.startswith("rep_"):
                body.append(insn("mov", "rcx", Imm(rng.randrange(1, 8), 32)))
            body.append(insn(m))
            body.append(insn("add", "rsp", Imm(256, 32)))
            return body, {"rdx": _arg(rng), "rax": _arg(rng)}

        add(f"{mnemonic}", "string", string_op)

    # -- terminals ------------------------------------------------------------
    def nop(rng):
        return [insn("nop"), insn("mov", "rax", "rdi")], {"rdi": _arg(rng)}

    def hlt(rng):
        return [insn("hlt")], {}

    def syscall_exit(rng):
        return [insn("mov", "eax", Imm(60, 32)), insn("syscall")], \
            {"rdi": rng.randrange(0, 256)}

    add("nop", "nullary", nop)
    add("hlt", "nullary", hlt)
    add("syscall-exit", "nullary", syscall_exit)

    return forms


_FORMS_CACHE: list[Form] | None = None


def forms() -> list[Form]:
    """The full deterministic form list (cached per process)."""
    global _FORMS_CACHE
    if _FORMS_CACHE is None:
        _FORMS_CACHE = _forms()
    return _FORMS_CACHE


def _build_binary(body, cc: str | None) -> Binary:
    """Assemble a form body (or the jcc diamond for ``cc``) plus ret."""
    builder = BinaryBuilder("diffsweep")
    text = builder.text
    text.label("main")
    if cc is not None:
        text.emit("cmp", "rdi", "rsi")
        text.emit(f"j{cc}", "taken")
        text.emit("mov", "eax", Imm(22, 32))
        text.emit("ret")
        text.label("taken")
        text.emit("mov", "eax", Imm(11, 32))
        text.emit("ret")
    else:
        for instr in body:
            text.emit(instr.mnemonic, *instr.operands)
        text.emit("ret")
    return builder.build(entry="main")


def _solve_linear(value, concrete: int, bindings: dict[str, int]) -> None:
    """Bind one unbound variable occurring (possibly nested) in *value* so
    the claim ``value == concrete`` can hold.

    The predicate relation is existential over havoc/join variables, so
    inverting width adapters and add/sub chains to propose a witness is
    exactly the right move — ``pred.holds`` re-validates every claim with
    the proposed binding, so a wrong guess only fails to relate, it can
    never mask a genuine mismatch elsewhere.
    """
    if isinstance(value, Var):
        if value.name not in bindings:
            bindings[value.name] = concrete & ((1 << value.width) - 1)
        return
    if not isinstance(value, App):
        return
    if value.op in ("zext", "sext", "low") and len(value.args) == 1:
        _solve_linear(value.args[0], concrete, bindings)
        return
    if value.op == "add":
        # n-ary add (the structural join flattens chains): solve the single
        # unevaluable addend from the residue.
        mask = (1 << value.width) - 1
        env = EvalEnv(variables=bindings)
        unknown = None
        total = 0
        for arg in value.args:
            try:
                total += evaluate(arg, env)
            except Exception:
                if unknown is not None:
                    return
                unknown = arg
        if unknown is not None:
            _solve_linear(unknown, (concrete - total) & mask, bindings)
        return
    if value.op == "sub" and len(value.args) == 2:
        mask = (1 << value.width) - 1
        a, b = value.args
        env = EvalEnv(variables=bindings)
        try:
            known_b = evaluate(b, env)
        except Exception:
            known_b = None
        if known_b is not None:
            _solve_linear(a, (concrete + known_b) & mask, bindings)
            return
        try:
            known_a = evaluate(a, env)
        except Exception:
            return
        _solve_linear(b, (known_a - concrete) & mask, bindings)


def _free_vars(expr, bindings: dict[str, int], out: set) -> None:
    if isinstance(expr, Var):
        if expr.name not in bindings:
            out.add(expr)
    elif isinstance(expr, App):
        for arg in expr.args:
            _free_vars(arg, bindings, out)


def _satisfy_clauses(state, bindings: dict[str, int]) -> None:
    """Pick witnesses for join variables constrained only by clauses.

    A structural join can introduce variables for *flag operands* (e.g.
    ``flags(cmp join@v@flags.a, …)`` with a surviving path clause over the
    join variable).  Such a variable values no register or memory cell, so
    the machine state cannot determine it — but the predicate relation is
    existential, so any value satisfying the clauses is a legitimate
    witness.  Try a handful of candidates around the evaluable side.
    """
    for clause in state.pred.clauses:
        env = EvalEnv(variables=bindings)
        try:
            clause.holds(env)
            continue
        except Exception:
            pass
        free: set = set()
        _free_vars(clause.lhs, bindings, free)
        _free_vars(clause.rhs, bindings, free)
        if len(free) != 1:
            continue
        (var,) = free
        other_side = clause.rhs if clause.lhs == var else clause.lhs
        if clause.lhs != var and clause.rhs != var:
            continue
        try:
            other = evaluate(other_side, env)
        except Exception:
            continue
        mask = (1 << clause.width) - 1
        vmask = (1 << var.width) - 1
        for cand in (other, (other + 1) & mask, (other - 1) & mask,
                     0, mask, mask >> 1, (mask >> 1) + 1):
            trial = {**bindings, var.name: cand & vmask}
            try:
                if clause.holds(EvalEnv(variables=trial)):
                    bindings[var.name] = cand & vmask
                    break
            except Exception:
                continue


def _bind_flag_witness(state, cpu: CPU, bindings: dict[str, int]) -> None:
    """Witness a flag-operand join variable from the concrete flag bits.

    A structural join can re-express the flag state over a fresh operand
    variable (``flags(cmp join@v@flags.a, rcx-join)``).  The machine keeps
    only the resulting flag *bits*, not the cmp operands, so any operand
    pair reproducing those bits is a legitimate witness.  With one side
    bound, enumerate candidates for the other and keep the first matching
    the concrete e/b/l conditions without violating a decidable clause.
    """
    flags = state.pred.flags
    if flags is None or flags.kind not in ("cmp", "arith"):
        return
    width = flags.width
    mask = (1 << width) - 1
    sign = 1 << (width - 1)

    def _signed(value: int) -> int:
        return value - (1 << width) if value & sign else value

    def _near(other: int) -> tuple[int, ...]:
        return (other, (other + 1) & mask, (other - 1) & mask, 0, 1,
                mask, mask >> 1, (mask >> 1) + 1, (other ^ sign) & mask)

    def _clauses_ok(trial: dict[str, int]) -> bool:
        trial_env = EvalEnv(variables=trial)
        for clause in state.pred.clauses:
            try:
                if not clause.holds(trial_env):
                    return False
            except Exception:
                continue     # clause still has other free variables
        return True

    want = (cpu.condition("e"), cpu.condition("b"), cpu.condition("l"))
    free_a: set = set()
    free_b: set = set()
    _free_vars(flags.a, bindings, free_a)
    _free_vars(flags.b, bindings, free_b)
    env = EvalEnv(variables=bindings)

    def _clause_candidates(name: str) -> tuple[int, ...]:
        # Values the surviving path clauses single out (e.g. an equality
        # kept as leu + geu bounds pins the variable to one constant).
        out: list[int] = []
        for clause in state.pred.clauses:
            if isinstance(clause.lhs, Var) and clause.lhs.name == name:
                other_expr = clause.rhs
            elif isinstance(clause.rhs, Var) and clause.rhs.name == name:
                other_expr = clause.lhs
            else:
                continue
            try:
                value = evaluate(other_expr, env)
            except Exception:
                continue
            out += [value & mask, (value + 1) & mask, (value - 1) & mask]
        return tuple(out)

    if flags.kind == "arith":
        # A joined result value: witness it from the concrete ZF/SF bits
        # (the only flags the arith kind models).
        if not (isinstance(flags.a, Var) and free_a):
            return
        want_zs = (cpu.condition("e"), cpu.condition("s"))
        for cand in _clause_candidates(flags.a.name) \
                + (0, 1, mask, sign, mask >> 1):
            if ((cand & mask) == 0, bool(cand & sign)) != want_zs:
                continue
            trial = {**bindings,
                     flags.a.name: cand & ((1 << flags.a.width) - 1)}
            if _clauses_ok(trial):
                bindings[flags.a.name] = cand & ((1 << flags.a.width) - 1)
                return
        return

    if free_a and free_b:
        # Both operands joined away (nested-branch merges): witness a pair.
        if not (isinstance(flags.a, Var) and isinstance(flags.b, Var)
                and flags.a.name != flags.b.name):
            return
        pool_a = _clause_candidates(flags.a.name) \
            + (0, 1, mask >> 1, (mask >> 1) + 1, mask)
        pool_b = _clause_candidates(flags.b.name)
        for a in pool_a:
            for b in pool_b + _near(a):
                if (a == b, a < b, _signed(a) < _signed(b)) != want:
                    continue
                trial = {**bindings,
                         flags.a.name: a & ((1 << flags.a.width) - 1),
                         flags.b.name: b & ((1 << flags.b.width) - 1)}
                if _clauses_ok(trial):
                    bindings.update(trial)
                    return
        return

    if len(free_a) + len(free_b) != 1:
        return
    free_side = "a" if free_a else "b"
    target = flags.a if free_side == "a" else flags.b
    if not isinstance(target, Var):
        return
    try:
        other = evaluate(flags.b if free_side == "a" else flags.a, env)
    except Exception:
        return
    for cand in _clause_candidates(target.name) + _near(other):
        a, b = (cand, other) if free_side == "a" else (other, cand)
        if (a == b, a < b, _signed(a) < _signed(b)) != want:
            continue
        trial = {**bindings, target.name: cand & ((1 << target.width) - 1)}
        if _clauses_ok(trial):
            bindings[target.name] = cand & ((1 << target.width) - 1)
            return


def _bind_unknowns(state, cpu: CPU, bindings: dict[str, int]) -> None:
    """Bind havoc/fresh variables from the concrete machine state.

    Join and havoc variables reach register claims either bare, wrapped in
    a width adapter (``zext(havoc%n)`` after a 32-bit destination write) or
    nested inside arithmetic the structural join kept (``join@v@rax +
    rsi0``); memory claims carry them bare.  Two passes so a variable
    bound from a memory slot can unlock a nested register solve; a final
    pass witnesses variables only clauses constrain.
    """
    for _ in range(2):
        for reg, value in state.pred.regs:
            concrete = cpu.rip if reg == "rip" else cpu.regs.get(reg)
            if concrete is not None:
                _solve_linear(value, concrete, bindings)
        for region, value in state.pred.mem:
            if isinstance(value, Var) and value.name not in bindings:
                try:
                    addr = evaluate(region.addr, EvalEnv(variables=bindings))
                except Exception:
                    continue
                bindings[value.name] = cpu.memory.read(addr, region.size)
    _bind_flag_witness(state, cpu, bindings)
    _satisfy_clauses(state, bindings)


def run_form(form: Form, seed: int = 2022,
             engine: str = "tau") -> str | None:
    """Run one form in τ/CPU lockstep; None on success, else a description
    naming the exact instruction that broke the simulation relation.

    *engine* selects the symbolic transfer function (``"tau"`` or
    ``"uop"``), so every form checks τ-vs-uop-vs-concrete with the same
    simulation relation."""
    from repro.hoare.lifter import _step_fn

    step_fn = step if engine == "tau" else _step_fn(engine)
    rng = random.Random(f"{seed}:{form.name}")
    body, regs = form.build(rng)
    cc = body[1] if isinstance(body, tuple) else None
    binary = _build_binary(body if cc is None else None, cc)

    cpu = CPU(binary)
    for reg, value in regs.items():
        cpu.regs[reg] = value & MASK64
    pristine = dict(cpu.memory.bytes)

    def read_initial(addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            a = (addr + i) & MASK64
            byte = pristine.get(a)
            if byte is None:
                section = binary.section_at(a)
                byte = section.data[a - section.addr] if section else 0
            value |= byte << (8 * i)
        return value

    variables = {f"{reg}0": value for reg, value in cpu.regs.items()}
    variables["ret0"] = read_initial(cpu.regs["rsp"], 8)

    ctx = LiftContext(binary)
    states = [initial_state(binary.entry, Var("ret0"))]
    for _ in range(64):
        if cpu.halted or cpu.rip == _SENTINEL_RETURN:
            break
        instr = binary.fetch(cpu.rip)
        try:
            cpu.execute(instr)
        except Exception as exc:   # unmodelled concrete trap: not a mismatch
            return (f"{form.name}: emulator error on {instr}: {exc}"
                    if "division" not in str(exc) else None)
        successors = [succ for state in states
                      for succ in step_fn(state, instr, ctx)]
        if cpu.halted:
            # Return to the sentinel or an explicit terminal: τ must have
            # produced the matching event (RetEvent / TerminalEvent).
            if any(isinstance(event, (RetEvent, TerminalEvent))
                   for succ in successors for event in succ.events):
                return None
            return f"{form.name}: CPU halted at {instr} without a τ terminal"
        related = []
        registers = {**cpu.regs, "rip": cpu.rip}
        for succ in successors:
            state = succ.state
            bindings = dict(variables)
            _bind_unknowns(state, cpu, bindings)
            probe = EvalEnv(variables=bindings, read_mem=read_initial,
                            registers=registers)
            try:
                if state.pred.holds(probe, read_current=cpu.memory.read) and \
                        model_holds(state.model, probe):
                    related.append(state)
            except Exception:
                continue
        if not related:
            return (f"{form.name}: no related symbolic state after {instr} "
                    f"(args {sorted(regs.items())})")
        states = related
    return None


def run_battery(seed: int = 2022, names: list[str] | None = None,
                engine: str = "tau") -> list[str]:
    """Run every form (or the named subset); returns sorted failure strings.

    An empty list is the healthy outcome — the campaign driver compares
    this against a fault-free baseline, so any τ/emulator fault that makes
    forms diverge shows up as a non-empty, deterministic failure list.
    *engine* runs the whole sweep through the selected transfer engine.
    """
    failures = []
    selected = forms() if names is None else \
        [form for form in forms() if form.name in set(names)]
    for form in selected:
        outcome = run_form(form, seed, engine=engine)
        if outcome is not None:
            failures.append(outcome)
    return sorted(failures)
