"""Memory-model tests: ins (Def 3.7), holds (Def 3.9), join (Def 3.12).

Includes the paper's running examples: Figure 2 / Example 3.8 (the
three-store snippet producing the aliasing and non-aliasing models) and
Example 3.13 (joining models with different enclosed children).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import EvalEnv, const, simplify as s, var
from repro.memmodel import (
    EMPTY,
    MemModel,
    MemTree,
    ins,
    join_models,
    model_holds,
    relation_in_model,
)
from repro.smt.solver import Region, Relation

RDI0 = var("rdi0")
RSI0 = var("rsi0")
RSP0 = var("rsp0")


def region(base, offset, size) -> Region:
    return Region(s.add(base, const(offset)), size)


def insert_chain(*regions, model=EMPTY):
    """Insert regions in order; returns the list of forked models."""
    models = [model]
    for reg in regions:
        next_models = []
        for m in models:
            next_models += [r.model for r in ins(reg, m)]
        models = next_models
    return models


# -- basic insertions -----------------------------------------------------------

def test_insert_into_empty():
    results = ins(region(RSP0, -8, 8), EMPTY)
    assert len(results) == 1
    model = results[0].model
    assert region(RSP0, -8, 8) in model.all_regions()


def test_provably_separate_regions_single_model():
    models = insert_chain(region(RSP0, -8, 8), region(RSP0, -16, 8))
    assert len(models) == 1
    assert relation_in_model(
        models[0], region(RSP0, -8, 8), region(RSP0, -16, 8)
    ) is Relation.SEPARATE


def test_provable_enclosure_nests():
    models = insert_chain(region(RSI0, 0, 8), region(RSI0, 4, 4))
    assert len(models) == 1
    assert relation_in_model(
        models[0], region(RSI0, 4, 4), region(RSI0, 0, 8)
    ) is Relation.ENCLOSED


def test_unknown_same_size_forks_alias_and_separate():
    """Figure 1: [edi, 4] vs [esi, 4] forks into ≡ and ⋈ models."""
    models = insert_chain(Region(RDI0, 4), Region(RSI0, 4))
    relations = {
        relation_in_model(m, Region(RDI0, 4), Region(RSI0, 4)) for m in models
    }
    assert relations == {Relation.ALIAS, Relation.SEPARATE}


def test_example_3_8_figure_2():
    """The three-store snippet: [rdi,8], [rsi+4,4], [rsi,8] produces the
    aliasing and non-aliasing models of Figure 2."""
    models = insert_chain(
        Region(RDI0, 8), region(RSI0, 4, 4), Region(RSI0, 8)
    )
    # In every model, [rsi+4, 4] is enclosed within [rsi, 8].
    for model in models:
        assert relation_in_model(
            model, region(RSI0, 4, 4), Region(RSI0, 8)
        ) is Relation.ENCLOSED
    relations = {
        relation_in_model(m, Region(RDI0, 8), Region(RSI0, 8)) for m in models
    }
    assert Relation.ALIAS in relations
    assert Relation.SEPARATE in relations
    aliasing = [
        m for m in models
        if relation_in_model(m, Region(RDI0, 8), Region(RSI0, 8)) is Relation.ALIAS
    ]
    # In the aliasing model the child is also enclosed in [rdi, 8]'s node.
    assert relation_in_model(
        aliasing[0], region(RSI0, 4, 4), Region(RDI0, 8)
    ) is Relation.ENCLOSED


def test_stack_vs_global_no_fork():
    models = insert_chain(region(RSP0, -8, 8), Region(const(0x404000), 8))
    assert len(models) == 1
    assert relation_in_model(
        models[0], region(RSP0, -8, 8), Region(const(0x404000), 8)
    ) is Relation.SEPARATE


def test_alignment_assumption_recorded_on_fork():
    results = ins(Region(RSI0, 4), MemModel(frozenset({MemTree.leaf(Region(RDI0, 4))})))
    assert all(
        any(a.kind == "alignment" for a in r.assumptions) for r in results
    )


def test_partial_overlap_possibility_destroys():
    """Odd-sized regions with unknown relation destroy the overlapping tree."""
    first = Region(RDI0, 3)
    second = Region(RSI0, 8)
    models = insert_chain(first, second)
    destroyed = [m for m in models if m.destroyed]
    assert destroyed, "expected a destroy branch"
    assert any(first in m.destroyed for m in destroyed)


def test_insert_into_destroyed_region_stays_destroyed():
    base = MemModel(destroyed=frozenset({Region(RDI0, 8)}))
    results = ins(Region(RDI0, 8), base)
    assert len(results) == 1
    assert Region(RDI0, 8) in results[0].model.destroyed


def test_reinserting_same_region_is_stable():
    models = insert_chain(region(RSP0, -8, 8))
    again = insert_chain(region(RSP0, -8, 8), model=models[0])
    assert again == models


# -- Definition 3.9: concrete satisfaction --------------------------------------------

def env_with(**variables):
    return EvalEnv(variables=variables)


def test_alias_model_holds_only_when_aliasing():
    models = insert_chain(Region(RDI0, 4), Region(RSI0, 4))
    alias_model = next(
        m for m in models
        if relation_in_model(m, Region(RDI0, 4), Region(RSI0, 4)) is Relation.ALIAS
    )
    sep_model = next(
        m for m in models
        if relation_in_model(m, Region(RDI0, 4), Region(RSI0, 4)) is Relation.SEPARATE
    )
    aliased = env_with(rdi0=0x1000, rsi0=0x1000)
    distinct = env_with(rdi0=0x1000, rsi0=0x2000)
    assert model_holds(alias_model, aliased)
    assert not model_holds(alias_model, distinct)
    assert model_holds(sep_model, distinct)
    assert not model_holds(sep_model, aliased)


def test_figure_2_model_satisfaction_example_3_10():
    models = insert_chain(Region(RDI0, 8), region(RSI0, 4, 4), Region(RSI0, 8))
    aliasing = next(
        m for m in models
        if relation_in_model(m, Region(RDI0, 8), Region(RSI0, 8)) is Relation.ALIAS
    )
    separate = next(
        m for m in models
        if relation_in_model(m, Region(RDI0, 8), Region(RSI0, 8)) is Relation.SEPARATE
    )
    assert model_holds(aliasing, env_with(rdi0=0x100, rsi0=0x100))
    assert not model_holds(aliasing, env_with(rdi0=0x100, rsi0=0x200))
    assert model_holds(separate, env_with(rdi0=0x100, rsi0=0x200))
    assert not model_holds(separate, env_with(rdi0=0x100, rsi0=0x104))


# -- Definition 3.12: join -------------------------------------------------------------

def test_join_identical_models_is_identity():
    model = insert_chain(region(RSP0, -8, 8), region(RSP0, -16, 8))[0]
    assert join_models(model, model) == model


def test_join_example_3_13():
    """[rdi,8] with child [rdi,4]  ⊔  [rdi,8] with child [rdi+4,4]
    == [rdi,8] with both children as separate siblings."""
    m0 = insert_chain(Region(RDI0, 8), region(RDI0, 0, 4))[0]
    m1 = insert_chain(Region(RDI0, 8), region(RDI0, 4, 4))[0]
    joined = join_models(m0, m1)
    assert relation_in_model(joined, region(RDI0, 0, 4), Region(RDI0, 8)) \
        is Relation.ENCLOSED
    assert relation_in_model(joined, region(RDI0, 4, 4), Region(RDI0, 8)) \
        is Relation.ENCLOSED
    assert relation_in_model(joined, region(RDI0, 0, 4), region(RDI0, 4, 4)) \
        is Relation.SEPARATE


def test_join_keeps_one_sided_tree_with_trivial_claims():
    """A single-region tree claims nothing, so it survives a join with ∅."""
    m0 = insert_chain(Region(RDI0, 8))[0]
    joined = join_models(m0, EMPTY)
    assert Region(RDI0, 8) in joined.all_regions()


def test_join_drops_one_sided_forked_claims():
    """A forked (non-necessary) alias claim must NOT survive a one-sided
    join: the other side's states need not alias."""
    models = insert_chain(Region(RDI0, 4), Region(RSI0, 4))
    alias_model = next(
        m for m in models
        if relation_in_model(m, Region(RDI0, 4), Region(RSI0, 4)) is Relation.ALIAS
    )
    joined = join_models(alias_model, EMPTY)
    assert relation_in_model(joined, Region(RDI0, 4), Region(RSI0, 4)) is None


def test_join_conflicting_relations_drops_info():
    """alias-model ⊔ separate-model keeps no claim about the pair."""
    models = insert_chain(Region(RDI0, 4), Region(RSI0, 4))
    alias_model = next(
        m for m in models
        if relation_in_model(m, Region(RDI0, 4), Region(RSI0, 4)) is Relation.ALIAS
    )
    sep_model = next(
        m for m in models
        if relation_in_model(m, Region(RDI0, 4), Region(RSI0, 4)) is Relation.SEPARATE
    )
    joined = join_models(alias_model, sep_model)
    assert relation_in_model(joined, Region(RDI0, 4), Region(RSI0, 4)) is None


def test_join_union_of_destroyed():
    m0 = MemModel(destroyed=frozenset({Region(RDI0, 8)}))
    m1 = MemModel(destroyed=frozenset({Region(RSI0, 8)}))
    joined = join_models(m0, m1)
    assert joined.destroyed == frozenset({Region(RDI0, 8), Region(RSI0, 8)})


# -- Lemma 3.14 as a property: s |= M0 or M1  =>  s |= M0 ⊔ M1 ------------------------

@settings(max_examples=200)
@given(
    rdi=st.integers(min_value=0, max_value=0x80).map(lambda v: v * 8),
    rsi=st.integers(min_value=0, max_value=0x80).map(lambda v: v * 8),
    pick_first=st.booleans(),
)
def test_prop_join_soundness_lemma_3_14(rdi, rsi, pick_first):
    models = insert_chain(Region(RDI0, 8), Region(RSI0, 8))
    env = env_with(rdi0=rdi, rsi0=rsi)
    satisfied = [m for m in models if model_holds(m, env)]
    assert satisfied, "forked models must cover every aligned state"
    chosen = satisfied[0]
    other = models[0] if not pick_first else models[-1]
    joined = join_models(chosen, other)
    assert model_holds(joined, env)


# -- Lemma 3.11 as a property: insertion covers every aligned configuration ----------

@settings(max_examples=150)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=15).map(lambda v: v * 8),
        min_size=2, max_size=4,
    )
)
def test_prop_insertion_completeness_lemma_3_11(addrs):
    """For any concrete assignment of 8-aligned addresses, some forked model
    holds after inserting one 8-byte region per distinct symbolic base."""
    bases = [var(f"p{i}") for i in range(len(addrs))]
    models = [EMPTY]
    for base in bases:
        next_models = []
        for model in models:
            next_models += [r.model for r in ins(Region(base, 8), model)]
        models = next_models
    env = env_with(**{f"p{i}": addr for i, addr in enumerate(addrs)})
    assert any(model_holds(m, env) for m in models)


@settings(max_examples=120)
@given(
    layouts=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=12).map(lambda v: v * 8),
            st.sampled_from([4, 8]),
        ),
        min_size=2, max_size=4,
    )
)
def test_prop_insertion_completeness_mixed_sizes(layouts):
    """Lemma 3.11 with mixed 4/8-byte regions: some forked model holds for
    every aligned concrete placement (including enclosures)."""
    bases = [var(f"q{i}") for i in range(len(layouts))]
    models = [EMPTY]
    for base, (_, size) in zip(bases, layouts):
        next_models = []
        for model in models:
            next_models += [r.model for r in ins(Region(base, size), model)]
        models = next_models
    env = env_with(**{f"q{i}": addr for i, (addr, _) in enumerate(layouts)})
    assert any(model_holds(m, env) for m in models), [str(m) for m in models]


@settings(max_examples=100)
@given(
    offsets=st.lists(st.integers(min_value=-16, max_value=16), min_size=2,
                     max_size=3),
    sizes=st.lists(st.sampled_from([4, 8]), min_size=2, max_size=3),
)
def test_prop_same_base_insertions_never_fork(offsets, sizes):
    """Same-base const-offset regions always have decidable relations:
    insertion must not fork (precision, not just soundness)."""
    model = EMPTY
    count = min(len(offsets), len(sizes))
    for offset, size in zip(offsets[:count], sizes[:count]):
        results = ins(Region(s.add(RSP0, const(offset * 4)), size), model)
        assert len(results) == 1, [str(r.model) for r in results]
        model = results[0].model
