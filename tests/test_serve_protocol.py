"""The serve wire protocol: schema validation, framing, golden round-trips.

Three layers:

* pure validators — requests, job specs, responses, with the repo's
  bool-is-not-int convention;
* :class:`repro.serve.protocol.LineReader` over a real socketpair —
  clean EOF vs truncation vs the oversized cap, lines split across and
  packed within chunks;
* golden round-trips against a live daemon — malformed / oversized /
  truncated requests get a structured error and a clean close, while
  schema-invalid-but-well-framed requests get an error and the
  connection stays usable.
"""

from __future__ import annotations

import json
import os
import socket

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    LineReader,
    ProtocolError,
    encode,
    error_response,
    read_request,
    validate_job_spec,
    validate_request,
    validate_response,
)

# -- request validation ----------------------------------------------------

def test_every_op_validates_minimal_form():
    minimal = {
        "ping": {}, "stats": {}, "drain": {},
        "submit": {"job": {"kind": "corpus", "scale": 1}},
        "status": {"job_id": "j-1"}, "result": {"job_id": "j-1"},
        "cancel": {"job_id": "j-1"}, "watch": {"job_id": "j-1"},
    }
    assert set(minimal) == set(protocol.OPS)
    for op, fields in minimal.items():
        validate_request({"op": op, **fields})
        validate_request({"op": op, "tenant": "acme", **fields})


def test_unknown_op_is_bad_request():
    with pytest.raises(ProtocolError) as excinfo:
        validate_request({"op": "launch-missiles"})
    assert excinfo.value.code == "bad-request"


def test_missing_and_unexpected_fields_are_bad_request():
    with pytest.raises(ProtocolError, match="missing field 'job_id'"):
        validate_request({"op": "status"})
    with pytest.raises(ProtocolError, match="unexpected field"):
        validate_request({"op": "ping", "extra": 1})


def test_non_object_request_is_bad_request():
    with pytest.raises(ProtocolError) as excinfo:
        validate_request([1, 2, 3])
    assert excinfo.value.code == "bad-request"


# -- job spec validation ---------------------------------------------------

def test_valid_job_specs():
    validate_job_spec({"kind": "lift", "path": "/bin/true", "priority": 5,
                       "cache": False, "cpu_seconds": 10.0,
                       "memory_bytes": 1 << 30,
                       "options": {"max_states": 100,
                                   "timeout_seconds": 1.5,
                                   "schedule": "scc",
                                   "pointer_summaries": True}})
    validate_job_spec({"kind": "corpus", "scale": 3})
    validate_job_spec({"kind": "chaos", "action": "crash_until",
                       "attempts": 2})


def test_lift_requires_path():
    with pytest.raises(ProtocolError) as excinfo:
        validate_job_spec({"kind": "lift"})
    assert excinfo.value.code == "bad-job"


def test_priority_band_is_enforced():
    with pytest.raises(ProtocolError, match="priority"):
        validate_job_spec({"kind": "corpus", "scale": 1, "priority": 101})
    with pytest.raises(ProtocolError, match="priority"):
        validate_job_spec({"kind": "corpus", "scale": 1, "priority": -101})


def test_unknown_chaos_action_and_bad_scale():
    with pytest.raises(ProtocolError, match="chaos action"):
        validate_job_spec({"kind": "chaos", "action": "meltdown"})
    with pytest.raises(ProtocolError, match="scale"):
        validate_job_spec({"kind": "corpus", "scale": 0})


def test_bool_is_not_an_int_in_specs():
    # priority lists int only; True is a bool and must be rejected.
    with pytest.raises(ProtocolError, match="priority"):
        validate_job_spec({"kind": "corpus", "scale": 1, "priority": True})
    with pytest.raises(ProtocolError, match="max_states"):
        validate_job_spec({"kind": "corpus", "scale": 1,
                           "options": {"max_states": True}})


def test_unknown_option_field_is_bad_job():
    with pytest.raises(ProtocolError, match="unexpected field"):
        validate_job_spec({"kind": "corpus", "scale": 1,
                           "options": {"turbo": True}})


# -- response validation ---------------------------------------------------

def test_response_validation():
    validate_response({"ok": True, "job_id": "j-1"})
    validate_response(error_response("bad-json", "nope"))
    with pytest.raises(ValueError):
        validate_response({"job_id": "j-1"})           # no ok
    with pytest.raises(ValueError):
        validate_response({"ok": False})               # no error object
    with pytest.raises(ValueError):
        validate_response({"ok": False,
                           "error": {"code": "made-up", "message": "m"}})


def test_encode_is_one_sorted_json_line():
    line = encode({"b": 1, "a": 2})
    assert line.endswith(b"\n")
    assert line == b'{"a": 2, "b": 1}\n'


# -- LineReader framing ----------------------------------------------------

@pytest.fixture()
def sock_pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def test_reader_clean_eof_returns_none(sock_pair):
    left, right = sock_pair
    left.sendall(b'{"op": "ping"}\n')
    left.close()
    reader = LineReader(right)
    assert reader.readline() == b'{"op": "ping"}'
    assert reader.readline() is None


def test_reader_truncation_is_distinguished_from_eof(sock_pair):
    left, right = sock_pair
    left.sendall(b'{"op": "pi')  # no newline, then close
    left.close()
    reader = LineReader(right)
    with pytest.raises(ProtocolError) as excinfo:
        reader.readline()
    assert excinfo.value.code == "truncated"


def test_reader_oversized_line_is_capped(sock_pair):
    left, right = sock_pair
    reader = LineReader(right, max_bytes=64)
    left.sendall(b"x" * 200 + b"\n")
    with pytest.raises(ProtocolError) as excinfo:
        reader.readline()
    assert excinfo.value.code == "oversized"


def test_reader_handles_split_and_packed_lines(sock_pair):
    left, right = sock_pair
    reader = LineReader(right)
    left.sendall(b'{"op": "ping"}\n{"op": ')
    assert reader.readline() == b'{"op": "ping"}'
    left.sendall(b'"stats"}\n')
    assert reader.readline() == b'{"op": "stats"}'


def test_read_request_rejects_bad_json(sock_pair):
    left, right = sock_pair
    left.sendall(b"this is not json\n")
    reader = LineReader(right)
    with pytest.raises(ProtocolError) as excinfo:
        read_request(reader)
    assert excinfo.value.code == "bad-json"


def test_read_request_round_trip(sock_pair):
    left, right = sock_pair
    left.sendall(encode({"op": "status", "job_id": "j-7"}))
    assert read_request(LineReader(right)) == {"op": "status",
                                               "job_id": "j-7"}


# -- golden round-trips against a live daemon ------------------------------

@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    from repro.serve import Server, ServerConfig

    tmp = tmp_path_factory.mktemp("serve-protocol")
    server = Server(ServerConfig(socket_path=str(tmp / "s.sock"),
                                 workers=1, cache=False))
    server.start()
    yield server
    server.close()


def _raw(daemon) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(daemon.config.socket_path)
    return sock


def _lines(sock) -> list[dict]:
    """Read every response line until the server closes the connection."""
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buffer += chunk
    return [json.loads(line) for line in buffer.splitlines() if line]


def test_malformed_json_gets_error_and_clean_close(daemon):
    with _raw(daemon) as sock:
        sock.sendall(b"{{{ nope\n")
        responses = _lines(sock)
    assert len(responses) == 1
    assert responses[0]["ok"] is False
    assert responses[0]["error"]["code"] == "bad-json"


def test_oversized_request_gets_error_and_clean_close(daemon):
    with _raw(daemon) as sock:
        sock.sendall(b'{"op": "ping", "pad": "'
                     + b"x" * (protocol.MAX_LINE_BYTES + 100) + b'"}\n')
        responses = _lines(sock)
    assert responses[0]["error"]["code"] == "oversized"


def test_truncated_request_gets_error_and_clean_close(daemon):
    with _raw(daemon) as sock:
        sock.sendall(b'{"op": "ping"')  # newline never arrives
        sock.shutdown(socket.SHUT_WR)
        responses = _lines(sock)
    assert responses[0]["error"]["code"] == "truncated"


def test_schema_error_keeps_the_connection_open(daemon):
    with _raw(daemon) as sock:
        reader = LineReader(sock)
        sock.sendall(encode({"op": "no-such-op"}))
        first = json.loads(reader.readline())
        assert first["error"]["code"] == "bad-request"
        # Same connection, next request still answered.
        sock.sendall(encode({"op": "ping"}))
        second = json.loads(reader.readline())
        assert second["ok"] is True


def test_bad_job_spec_gets_structured_error(daemon):
    with _raw(daemon) as sock:
        reader = LineReader(sock)
        sock.sendall(encode({"op": "submit",
                             "job": {"kind": "chaos", "action": "meltdown"}}))
        response = json.loads(reader.readline())
    assert response["error"]["code"] == "bad-job"


def test_chaos_is_refused_without_allow_chaos(daemon):
    with _raw(daemon) as sock:
        reader = LineReader(sock)
        sock.sendall(encode({"op": "submit",
                             "job": {"kind": "chaos", "action": "sleep"}}))
        response = json.loads(reader.readline())
    assert response["error"]["code"] == "chaos-disabled"


def test_unliftable_path_is_bad_job(daemon, tmp_path):
    junk = tmp_path / "junk.elf"
    junk.write_bytes(b"\x00not an elf")
    with _raw(daemon) as sock:
        reader = LineReader(sock)
        sock.sendall(encode({"op": "submit",
                             "job": {"kind": "lift", "path": str(junk)}}))
        response = json.loads(reader.readline())
    assert response["error"]["code"] == "bad-job"
    with _raw(daemon) as sock:
        reader = LineReader(sock)
        sock.sendall(encode({"op": "submit",
                             "job": {"kind": "lift",
                                     "path": str(tmp_path / "absent")}}))
        response = json.loads(reader.readline())
    assert response["error"]["code"] == "bad-job"


def test_every_wire_response_validates(daemon):
    with _raw(daemon) as sock:
        reader = LineReader(sock)
        for request in ({"op": "ping"}, {"op": "stats"},
                        {"op": "status", "job_id": "nope"},
                        {"op": "result", "job_id": "nope"},
                        {"op": "cancel", "job_id": "nope"}):
            sock.sendall(encode(request))
            validate_response(json.loads(reader.readline()))


def test_unknown_job_errors_do_not_leak_existence(daemon):
    with _raw(daemon) as sock:
        reader = LineReader(sock)
        for op in ("status", "result", "cancel"):
            sock.sendall(encode({"op": op, "job_id": "j-999999"}))
            response = json.loads(reader.readline())
            assert response["error"]["code"] == "unknown-job"
