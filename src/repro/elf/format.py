"""Minimal ELF64 writer and reader.

Binaries built by the corpus generator are serialized as structurally valid
ELF64 executables (readable with ``readelf``): an ELF header, program
headers for each mapped section, and a section-header table.  Two extra
conventions carry the metadata the lifter needs:

* ``.plt.repro`` — external-stub table: the section's contents are the stub
  code, and a paired ``.extstr`` string table plus ``.extmap`` (addr,name)
  records map stub addresses to external function names.
* ``.symtab``/``.strtab`` — a plain ELF symbol table with ``STT_FUNC``
  entries for exported functions (shared-object lifting mode).  A stripped
  binary simply has an empty symbol table.
"""

from __future__ import annotations

import struct

from repro.elf.image import Binary, Section

_ELF_MAGIC = b"\x7fELF"
_EI_CLASS64 = 2
_EI_DATA_LE = 1
_ET_EXEC = 2
_EM_X86_64 = 0x3E

_SHT_NULL = 0
_SHT_PROGBITS = 1
_SHT_SYMTAB = 2
_SHT_STRTAB = 3
_SHT_NOTE = 7

_SHF_WRITE = 1
_SHF_ALLOC = 2
_SHF_EXECINSTR = 4

_PT_LOAD = 1
_PF_X = 1
_PF_W = 2
_PF_R = 4

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_SHDR = struct.Struct("<IIQQQQIIQQ")
_SYM = struct.Struct("<IBBHQQ")


class ElfError(ValueError):
    """Malformed or unsupported ELF input."""


class _StringTable:
    def __init__(self) -> None:
        self.data = bytearray(b"\x00")
        self.offsets: dict[str, int] = {"": 0}

    def add(self, name: str) -> int:
        if name not in self.offsets:
            self.offsets[name] = len(self.data)
            self.data += name.encode() + b"\x00"
        return self.offsets[name]


def write_elf(binary: Binary) -> bytes:
    """Serialize *binary* to ELF64 bytes."""
    shstrtab = _StringTable()
    strtab = _StringTable()

    # Symbol table: one STT_FUNC entry per exported function.
    symtab = bytearray(_SYM.pack(0, 0, 0, 0, 0, 0))
    for name, addr in sorted(binary.symbols.items()):
        name_off = strtab.add(name)
        info = (1 << 4) | 2  # STB_GLOBAL, STT_FUNC
        symtab += _SYM.pack(name_off, info, 0, 1, addr, 0)

    # External-stub map: little-endian (addr:u64, name_offset:u32) records.
    extstr = _StringTable()
    extmap = bytearray()
    for addr, name in sorted(binary.externals.items()):
        extmap += struct.pack("<QI", addr, extstr.add(name))

    sections: list[tuple[str, int, int, bytes, int, int]] = []
    # (name, sh_type, sh_flags, data, sh_addr, sh_link)
    for section in binary.sections:
        flags = _SHF_ALLOC
        if section.executable:
            flags |= _SHF_EXECINSTR
        if section.writable:
            flags |= _SHF_WRITE
        sections.append((section.name, _SHT_PROGBITS, flags, section.data,
                         section.addr, 0))

    strtab_index = len(sections) + 2  # after null + progbits + symtab
    sections.append((".symtab", _SHT_SYMTAB, 0, bytes(symtab), 0, strtab_index))
    sections.append((".strtab", _SHT_STRTAB, 0, bytes(strtab.data), 0, 0))
    sections.append((".extmap", _SHT_NOTE, 0, bytes(extmap), 0, len(sections) + 2))
    sections.append((".extstr", _SHT_STRTAB, 0, bytes(extstr.data), 0, 0))

    phdrs = [s for s in binary.sections]
    ehsize = _EHDR.size
    phoff = ehsize
    data_start = phoff + len(phdrs) * _PHDR.size

    # Lay out section data in file order.
    blobs: list[tuple[int, bytes]] = []
    offset = data_start
    file_offsets: list[int] = []
    for _, _, _, data, _, _ in sections:
        offset = (offset + 7) & ~7
        file_offsets.append(offset)
        blobs.append((offset, data))
        offset += len(data)

    shoff = (offset + 7) & ~7
    shstrndx = len(sections) + 1  # +1 for the null section header

    # Section header table.
    shdrs = [_SHDR.pack(0, _SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0)]
    for (name, sh_type, sh_flags, data, sh_addr, sh_link), file_off in zip(
        sections, file_offsets
    ):
        name_off = shstrtab.add(name)
        entsize = _SYM.size if sh_type == _SHT_SYMTAB else 0
        shdrs.append(_SHDR.pack(name_off, sh_type, sh_flags, sh_addr, file_off,
                                len(data), sh_link, 0, 1, entsize))
    # .shstrtab itself.
    name_off = shstrtab.add(".shstrtab")
    shstr_off = shoff + (len(shdrs) + 1) * _SHDR.size
    shdrs.append(_SHDR.pack(name_off, _SHT_STRTAB, 0, 0, shstr_off,
                            len(shstrtab.data), 0, 0, 1, 0))

    ehdr = _EHDR.pack(
        _ELF_MAGIC + bytes([_EI_CLASS64, _EI_DATA_LE, 1, 0]) + b"\x00" * 8,
        _ET_EXEC, _EM_X86_64, 1, binary.entry, phoff, shoff, 0,
        ehsize, _PHDR.size, len(phdrs), _SHDR.size, len(shdrs), shstrndx,
    )

    out = bytearray(ehdr)
    for section, (file_off, _) in zip(binary.sections, blobs):
        flags = _PF_R
        if section.executable:
            flags |= _PF_X
        if section.writable:
            flags |= _PF_W
        out += _PHDR.pack(_PT_LOAD, flags, file_off, section.addr, section.addr,
                          len(section.data), len(section.data), 0x1000)
    for file_off, data in blobs:
        out += b"\x00" * (file_off - len(out))
        out += data
    out += b"\x00" * (shoff - len(out))
    for shdr in shdrs:
        out += shdr
    out += bytes(shstrtab.data)
    return bytes(out)


def read_elf(data: bytes, name: str = "a.out") -> Binary:
    """Parse ELF64 bytes produced by :func:`write_elf` (or compatible)."""
    if data[:4] != _ELF_MAGIC:
        raise ElfError("not an ELF file")
    if data[4] != _EI_CLASS64 or data[5] != _EI_DATA_LE:
        raise ElfError("only little-endian ELF64 is supported")
    fields = _EHDR.unpack_from(data, 0)
    entry, shoff = fields[4], fields[6]
    shentsize, shnum, shstrndx = fields[11], fields[12], fields[13]

    raw_shdrs = [
        _SHDR.unpack_from(data, shoff + i * shentsize) for i in range(shnum)
    ]
    shstr_off = raw_shdrs[shstrndx][4]
    shstr_len = raw_shdrs[shstrndx][5]
    shstr = data[shstr_off:shstr_off + shstr_len]

    def str_at(table: bytes, offset: int) -> str:
        end = table.index(b"\x00", offset)
        return table[offset:end].decode()

    binary = Binary(entry=entry, name=name)
    strtabs: dict[int, bytes] = {}
    symtab_entries: list[tuple[int, int]] = []  # (name_off, addr) with link
    symtab_link = None
    extmap_raw = b""
    extmap_link = None

    for index, shdr in enumerate(raw_shdrs):
        (name_off, sh_type, sh_flags, sh_addr, sh_offset, sh_size,
         sh_link, _, _, _) = shdr
        section_name = str_at(shstr, name_off)
        body = data[sh_offset:sh_offset + sh_size]
        if sh_type == _SHT_PROGBITS and sh_flags & _SHF_ALLOC:
            binary.sections.append(Section(
                name=section_name, addr=sh_addr, data=body,
                executable=bool(sh_flags & _SHF_EXECINSTR),
                writable=bool(sh_flags & _SHF_WRITE),
            ))
        elif sh_type == _SHT_SYMTAB:
            symtab_link = sh_link
            for pos in range(0, len(body) - _SYM.size + 1, _SYM.size):
                sym_name, info, _, shndx, value, _ = _SYM.unpack_from(body, pos)
                if info & 0xF == 2 and sym_name:  # STT_FUNC
                    symtab_entries.append((sym_name, value))
        elif sh_type == _SHT_STRTAB:
            strtabs[index] = body
        elif section_name == ".extmap":
            extmap_raw = body
            extmap_link = sh_link

    if symtab_link is not None and symtab_link in strtabs:
        table = strtabs[symtab_link]
        for name_off, addr in symtab_entries:
            binary.symbols[str_at(table, name_off)] = addr
    if extmap_raw and extmap_link in strtabs:
        table = strtabs[extmap_link]
        for pos in range(0, len(extmap_raw) - 11, 12):
            addr, name_off = struct.unpack_from("<QI", extmap_raw, pos)
            binary.externals[addr] = str_at(table, name_off)
    return binary


def load_binary(path: str) -> Binary:
    """Load an ELF binary from *path*."""
    with open(path, "rb") as handle:
        data = handle.read()
    return read_elf(data, name=path.rsplit("/", 1)[-1])


def save_binary(binary: Binary, path: str) -> None:
    """Serialize *binary* as ELF64 at *path*."""
    with open(path, "wb") as handle:
        handle.write(write_elf(binary))
