"""The persistent lift store: keys, invalidation, corruption, identity.

The store's contract has two halves.  *Hits must be exact*: a warm lift
returns the same artifact the cold lift produced, down to byte-identical
canonical corpus reports, serially and under a worker pool.  *Misses must
be conservative*: any change a lift could observe — a flipped instruction
byte, a bumped ``SEMANTICS_VERSION``, an injected semantic fault
(a runtime monkeypatch, invisible to source hashing), different lifter
options — must change the key; and any storage-level damage degrades to
a silent miss, never an exception.
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from repro.corpus import Corpus, CorpusBinary
from repro.eval.runner import run_corpus
from repro.hoare.lifter import lift
from repro.minicc import compile_source
from repro.perf import store as store_mod
from repro.perf.counters import counters
from repro.perf.store import (
    LiftStore,
    cached_lift,
    lift_key,
    resolve_store,
    semantics_fingerprint,
)
from repro.qa import faults
from repro.qa.mutants import random_mutants
from repro.qa.targets import build_target


@pytest.fixture()
def store(tmp_path) -> LiftStore:
    return LiftStore(root=tmp_path / "lift-store")


# -- hits are exact ---------------------------------------------------------

def test_roundtrip_hit_reproduces_the_cold_result(store):
    binary = build_target("loop")
    counters.reset()
    cold = lift(binary, cache=store)
    assert counters.cache_lift_misses == 1
    assert counters.cache_lift_stores == 1
    warm = lift(binary, cache=store)
    assert counters.cache_lift_hits == 1
    assert warm.verified == cold.verified
    assert len(warm.graph.vertices) == len(cold.graph.vertices)
    assert len(warm.graph.edges) == len(cold.graph.edges)
    assert sorted(warm.instructions) == sorted(cold.instructions)
    assert warm.stats.instructions == cold.stats.instructions
    assert warm.stats.states == cold.stats.states


def test_warm_corpus_report_is_byte_identical(tmp_path):
    corpus = Corpus()
    corpus.binaries.append(CorpusBinary(
        name="sum", directory="bin",
        binary=compile_source(
            "long main(long n) { long s = 0;"
            " for (long i = 0; i < n; i = i + 1) { s = s + i; }"
            " return s; }",
            name="sum"),
        expected="lifted",
    ))
    corpus.binaries.append(CorpusBinary(
        name="mul", directory="bin",
        binary=compile_source("long main(long n) { return n * 3; }",
                              name="mul"),
        expected="lifted",
    ))
    directory = str(tmp_path / "corpus-store")
    counters.reset()
    cold = run_corpus(corpus=corpus, cache=True, cache_dir=directory)
    assert counters.cache_lift_stores == 2
    counters.reset()
    warm = run_corpus(corpus=corpus, cache=True, cache_dir=directory)
    assert counters.cache_lift_hits == 2
    assert warm.canonical_json() == cold.canonical_json()
    # The identity must survive a worker pool as well.
    warm2 = run_corpus(corpus=corpus, cache=True, cache_dir=directory,
                       jobs=2)
    assert warm2.canonical_json() == cold.canonical_json()


def test_obs_tasks_bypass_the_store(tmp_path):
    corpus = Corpus()
    corpus.binaries.append(CorpusBinary(
        name="mul", directory="bin",
        binary=compile_source("long main(long n) { return n * 3; }",
                              name="mul"),
        expected="lifted",
    ))
    directory = str(tmp_path / "obs-store")
    counters.reset()
    first = run_corpus(corpus=corpus, cache=True, cache_dir=directory,
                       obs=True)
    second = run_corpus(corpus=corpus, cache=True, cache_dir=directory,
                        obs=True)
    # No hits, no stores: tracing always measures a real lift, and the
    # warm obs rollup must equal the cold one.
    assert counters.cache_lift_hits == 0
    assert counters.cache_lift_stores == 0
    assert first.obs is not None
    assert second.canonical_json() == first.canonical_json()


# -- misses are conservative ------------------------------------------------

def test_byte_perturbed_function_misses(store):
    binary = build_target("loop")
    mutants = random_mutants(binary, "loop", random.Random(7), 1)
    assert mutants, "expected at least one applicable mutant"
    _, mutant = mutants[0]
    assert lift_key(binary) != lift_key(mutant)
    counters.reset()
    lift(binary, cache=store)
    lift(mutant, cache=store)
    assert counters.cache_lift_hits == 0
    assert counters.cache_lift_misses == 2
    assert counters.cache_lift_stores == 2


def test_semantics_version_bump_misses(store, monkeypatch):
    binary = build_target("arith")
    key_before = lift_key(binary)
    lift(binary, cache=store)
    monkeypatch.setattr(store_mod, "SEMANTICS_VERSION",
                        store_mod.SEMANTICS_VERSION + "-bumped")
    assert lift_key(binary) != key_before
    counters.reset()
    lift(binary, cache=store)
    assert counters.cache_lift_hits == 0
    assert counters.cache_lift_misses == 1


def test_injected_fault_changes_the_fingerprint():
    clean = semantics_fingerprint()
    with faults.inject("tau-jcc-cond-swap"):
        assert semantics_fingerprint() != clean
    assert semantics_fingerprint() == clean


def test_options_change_the_key():
    binary = build_target("arith")
    base = lift_key(binary)
    assert lift_key(binary, max_states=99) != base
    assert lift_key(binary, trust_data=False) != base
    assert lift_key(binary, timeout_seconds=1.0) != base
    assert lift_key(binary, schedule="address") != base


def test_corrupt_or_truncated_entry_is_a_silent_miss(store):
    binary = build_target("arith")
    key = lift_key(binary)
    lift(binary, cache=store)
    path = store.entry_path(key)

    path.write_bytes(b"not a pickle")
    assert store.get(key) is None
    assert not path.exists()  # dropped, not retried forever

    lift(binary, cache=store)  # repopulate
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert store.get(key) is None

    # A pickle of the wrong shape is also a miss.
    lift(binary, cache=store)
    path.write_bytes(pickle.dumps({"schema": -1}))
    assert store.get(key) is None

    counters.reset()
    warm = lift(binary, cache=store)  # store works again after the damage
    assert warm.verified
    assert counters.cache_lift_misses == 1
    assert counters.cache_lift_stores == 1


def test_lru_eviction_respects_the_byte_cap(tmp_path):
    binary_a = build_target("arith")
    binary_b = build_target("branch")
    probe = LiftStore(root=tmp_path / "probe")
    result = cached_lift(binary_a, store=probe)
    entry_size = probe.stats()["bytes"]
    assert result.verified and entry_size > 0

    small = LiftStore(root=tmp_path / "small",
                      max_bytes=int(entry_size * 1.5))
    cached_lift(binary_a, store=small)
    cached_lift(binary_b, store=small)  # over the cap: a must be evicted
    assert small.stats()["entries"] == 1
    assert small.get(lift_key(binary_a)) is None
    assert small.get(lift_key(binary_b)) is not None


def test_rebuilds_a_lost_index(store):
    binary = build_target("arith")
    lift(binary, cache=store)
    store.index_path.unlink()
    counters.reset()
    lift(binary, cache=store)
    assert counters.cache_lift_hits == 1


# -- resolution -------------------------------------------------------------

def test_resolve_store_env_and_overrides(tmp_path, monkeypatch):
    monkeypatch.delenv(store_mod.ENV_ENABLE, raising=False)
    assert resolve_store(None) is None
    assert resolve_store(False) is None
    monkeypatch.setenv(store_mod.ENV_ENABLE, "1")
    monkeypatch.setenv(store_mod.ENV_DIR, str(tmp_path / "ambient"))
    ambient = resolve_store(None)
    assert isinstance(ambient, LiftStore)
    assert ambient.root == tmp_path / "ambient"
    assert resolve_store(False) is None  # explicit off beats the env
    explicit = resolve_store(True, cache_dir=str(tmp_path / "explicit"))
    assert explicit.root == tmp_path / "explicit"
    passthrough = LiftStore(root=tmp_path / "given")
    assert resolve_store(passthrough) is passthrough


def test_unknown_schedule_mode_is_rejected():
    with pytest.raises(ValueError):
        lift(build_target("arith"), schedule="mystery")


# -- persisted telemetry (PR 8) ---------------------------------------------

def test_index_telemetry_counts_hits_misses_stores(store):
    binary = build_target("loop")
    lift(binary, cache=store)            # miss + store
    lift(binary, cache=store)            # hit
    lift(binary, cache=store)            # hit
    stats = store.stats()
    assert stats["telemetry"] == {"hits": 2, "misses": 1, "stores": 1,
                                  "evictions": 0}
    assert stats["hit_rate"] == pytest.approx(2 / 3)


def test_telemetry_survives_process_restart(tmp_path):
    binary = build_target("arith")
    first = LiftStore(root=tmp_path / "persist")
    lift(binary, cache=first)
    # A fresh handle over the same directory sees the lifetime counts.
    second = LiftStore(root=tmp_path / "persist")
    lift(binary, cache=second)
    telemetry = second.stats()["telemetry"]
    assert telemetry == {"hits": 1, "misses": 1, "stores": 1, "evictions": 0}


def test_telemetry_counts_evictions(tmp_path):
    binary_a = build_target("arith")
    binary_b = build_target("branch")
    probe = LiftStore(root=tmp_path / "probe")
    cached_lift(binary_a, store=probe)
    entry_size = probe.stats()["bytes"]

    small = LiftStore(root=tmp_path / "small",
                      max_bytes=int(entry_size * 1.5))
    cached_lift(binary_a, store=small)
    cached_lift(binary_b, store=small)
    assert small.stats()["telemetry"]["evictions"] == 1


def test_entry_ages_and_empty_store_defaults(store):
    stats = store.stats()
    assert stats["hit_rate"] == 0.0
    assert stats["oldest_entry_age"] is None
    assert stats["newest_entry_age"] is None
    lift(build_target("loop"), cache=store)
    stats = store.stats()
    assert stats["oldest_entry_age"] >= 0.0
    assert stats["newest_entry_age"] >= 0.0
    assert stats["oldest_entry_age"] >= stats["newest_entry_age"]


def test_entry_creation_time_survives_touches(store):
    binary = build_target("loop")
    lift(binary, cache=store)
    index = store._load_index()
    key = lift_key(binary)
    created = index["entries"][key]["created"]
    clock = index["entries"][key]["at"]
    lift(binary, cache=store)            # hit: touches the LRU stamp
    index = store._load_index()
    assert index["entries"][key]["created"] == created
    assert index["entries"][key]["at"] > clock


def test_rebuilt_index_keeps_telemetry_shape(store):
    binary = build_target("arith")
    lift(binary, cache=store)
    store.index_path.unlink()
    lift(binary, cache=store)            # rebuild from scan, then hit
    stats = store.stats()
    # The rebuilt index restarts lifetime counts but keeps the schema.
    assert set(stats["telemetry"]) == {"hits", "misses", "stores",
                                       "evictions"}
    assert stats["telemetry"]["hits"] >= 1
    assert stats["oldest_entry_age"] is not None
