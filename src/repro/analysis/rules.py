"""The builtin lint rules.

Every rule consumes one :class:`AnalysisContext` and yields diagnostics;
all of them are built on the τ-probed def/use summaries and the worklist
analyses, so there is no second opinion about instruction behaviour — a
semantics bug would surface identically in verification and in lint.
"""

from __future__ import annotations

from repro.isa import Instruction
from repro.isa.operands import Reg
from repro.isa.registers import ARG_REGISTERS, CALLEE_SAVED, CALLER_SAVED
from repro.analysis.context import AnalysisContext
from repro.analysis.lint import Diagnostic, register_rule
from repro.analysis.liveness import FLAGS, live_after
from repro.analysis.pointer.domain import StackFrame
from repro.analysis.reaching import ENTRY, reaching_before
from repro.analysis.stack import resolve_offset, solve_stack, stack_problem

#: SysV red zone: bytes below rsp a leaf function may use freely.
RED_ZONE = 128

#: Registers with no defined value at function entry under the SysV ABI:
#: caller-saved, not an argument register.  A read of one of these before
#: any write observes garbage.
UNINITIALIZED_AT_ENTRY = frozenset(CALLER_SAVED) - frozenset(ARG_REGISTERS)


def _is_zero_idiom(instr: Instruction) -> bool:
    """``xor r, r`` / ``sub r, r``: reads of *r* do not observe its value."""
    if instr.mnemonic not in ("xor", "sub", "sbb"):
        return False
    ops = instr.operands
    return (
        len(ops) == 2 and isinstance(ops[0], Reg) and ops[0] == ops[1]
    )


@register_rule("uninit-read")
def uninit_read(ctx: AnalysisContext):
    """Read of a register that may still hold its undefined entry value."""
    for view in ctx.views:
        reach = reaching_before(ctx, view)
        for leader in view.blocks:
            for instr in view.instrs.get(leader, []):
                if instr.addr is None or _is_zero_idiom(instr):
                    continue
                at = reach.get(instr.addr, frozenset())
                du = ctx.def_use(instr)
                for family in sorted(du.uses & UNINITIALIZED_AT_ENTRY):
                    if (family, ENTRY) in at:
                        yield Diagnostic(
                            rule="uninit-read",
                            severity="error",
                            addr=instr.addr,
                            function=view.entry,
                            message=(
                                f"read of {family}, which is uninitialized at "
                                f"function entry"
                            ),
                        )


@register_rule("dead-store")
def dead_store(ctx: AnalysisContext):
    """A register write no path ever reads before the next write."""
    for view in ctx.views:
        live = live_after(ctx, view)
        for leader in view.blocks:
            for instr in view.instrs.get(leader, []):
                if instr.addr is None:
                    continue
                if instr.mnemonic in ("call", "ret", "push", "pop", "nop"):
                    continue
                du = ctx.def_use(instr)
                # rsp adjustments allocate/free stack; the "value" being
                # unread (epilogues restore from rbp) does not make them dead.
                defs = du.defs - {"rsp"}
                if not defs or du.stores:
                    continue
                after = live.get(instr.addr, frozenset())
                if any(family in after for family in defs):
                    continue
                if du.writes_flags and FLAGS in after:
                    continue
                names = ", ".join(sorted(defs))
                yield Diagnostic(
                    rule="dead-store",
                    severity="warning",
                    addr=instr.addr,
                    function=view.entry,
                    message=f"dead store: {names} written but never read",
                )


@register_rule("unreachable-block")
def unreachable_block(ctx: AnalysisContext):
    """A basic block belonging to no function partition."""
    covered: set[int] = set()
    for members in ctx.cfg.functions.values():
        covered |= members
    for leader in sorted(ctx.cfg.blocks):
        if leader not in covered:
            block = ctx.cfg.blocks[leader]
            yield Diagnostic(
                rule="unreachable-block",
                severity="warning",
                addr=leader,
                message=(
                    f"unreachable block of {len(block.addresses)} "
                    f"instruction(s): no function entry flows here"
                ),
            )


def _proven_own_frame(ctx: AnalysisContext, entry: int, addr: int) -> bool:
    """Does the pointer analysis prove the store at *addr* targets only the
    current function's own frame?  (No Unknown, no foreign frame, no
    global/heap region in the MAY-set.)"""
    facts = ctx.pointer.functions.get(entry)
    if facts is None:
        return False
    access = facts.accesses.get((addr, "store"))
    if access is None or not access.regions:
        return False
    return all(
        isinstance(region, StackFrame) and region.fn == entry
        for region in access.regions
    )


@register_rule("write-below-rsp")
def write_below_rsp(ctx: AnalysisContext):
    """An explicit store below the stack pointer.

    Legal only in the 128-byte red zone of a *leaf* function: any call (or
    signal) is free to clobber that memory, so in a function that calls out
    this is flagged as a warning.  In a leaf, a red-zone store the pointer
    analysis proves to target the function's *own* frame is the legal SysV
    idiom and is suppressed outright; a leaf store the analysis cannot pin
    down (or one beyond the red zone) remains an informational note.
    ``push`` never fires — its store lands exactly at the new rsp."""
    problem = stack_problem(ctx)
    for view in ctx.views:
        solution = solve_stack(ctx, view)
        has_call = any(
            instr.mnemonic == "call"
            for leader in view.blocks
            for instr in view.instrs.get(leader, [])
        )
        for leader in view.blocks:
            for instr, before in solution.before_each(view, problem, leader):
                if instr.addr is None or not before.reached:
                    continue
                du = ctx.def_use(instr)
                if not du.stores:
                    continue
                after = problem.transfer(instr, before)
                if after.height is None:
                    continue
                for store in du.stores:
                    offset = resolve_offset(store.addr, before)
                    if offset is None or offset >= after.height:
                        continue
                    depth = after.height - offset
                    in_red_zone = depth <= RED_ZONE
                    if (not has_call and in_red_zone
                            and _proven_own_frame(ctx, view.entry, instr.addr)):
                        continue
                    zone = "red zone" if in_red_zone else "beyond the red zone"
                    yield Diagnostic(
                        rule="write-below-rsp",
                        severity="warning" if has_call else "info",
                        addr=instr.addr,
                        function=view.entry,
                        message=(
                            f"store {depth} bytes below rsp ({zone})"
                            + (
                                ": a call may clobber it before it is read"
                                if has_call else ""
                            )
                        ),
                    )


def _is_restore(ctx: AnalysisContext, site: object, family: str) -> bool:
    """Does the definition at *site* reload *family* from memory?"""
    if not isinstance(site, int):
        return False
    instr = ctx.result.instructions.get(site)
    if instr is None:
        return True                     # call site: callee preserves it
    du = ctx.def_use(instr)
    return bool(du.loads) and family in du.defs


@register_rule("callee-saved-clobber")
def callee_saved_clobber(ctx: AnalysisContext):
    """A callee-saved register overwritten and not restored before ``ret``.

    The lifter *rejects* such functions outright (calling-convention sanity
    property); this rule localizes the clobbering definition, which the
    rejection message does not."""
    for view in ctx.views:
        reach = reaching_before(ctx, view)
        # Scan block terminators, not view.rets: a *rejected* lift records
        # no return edge, and those are exactly the lifts worth localizing.
        for leader in view.blocks:
            terminator = view.terminator(leader)
            if terminator is None or terminator.mnemonic != "ret":
                continue
            at = reach.get(terminator.addr, frozenset())
            for family in sorted(CALLEE_SAVED):
                sites = sorted(
                    {
                        site for (f, site) in at
                        if f == family and site != ENTRY
                        and not _is_restore(ctx, site, family)
                    },
                    key=lambda s: (isinstance(s, int), s),
                )
                for site in sites:
                    where = f"{site:#x}" if isinstance(site, int) else str(site)
                    yield Diagnostic(
                        rule="callee-saved-clobber",
                        severity="warning",
                        addr=terminator.addr,
                        function=view.entry,
                        message=(
                            f"callee-saved {family} clobbered at {where} "
                            f"reaches this return unrestored"
                        ),
                    )


@register_rule("rop-gadget-surface")
def rop_gadget_surface(ctx: AnalysisContext):
    """Instructions decoded *inside* the bytes of other instructions.

    Overlapping decodes are the raw material of the paper's "weird edges"
    (a concrete return target landing mid-instruction); each one widens the
    binary's ROP surface.  A control-flow instruction hiding inside another
    is an actual gadget and is flagged as a warning."""
    instructions = ctx.result.instructions
    for addr in sorted(instructions):
        outer = instructions[addr]
        if outer.size is None:
            continue
        for inner_addr in range(addr + 1, outer.end):
            inner = instructions.get(inner_addr)
            if inner is None:
                continue
            gadget = inner.is_control_flow()
            yield Diagnostic(
                rule="rop-gadget-surface",
                severity="warning" if gadget else "info",
                addr=inner_addr,
                message=(
                    f"{inner.mnemonic} at {inner_addr:#x} decodes inside "
                    f"the bytes of {outer.mnemonic} at {addr:#x}"
                    + (" (hidden control flow: ROP gadget)" if gadget else "")
                ),
            )


@register_rule("escaping-stack-pointer")
def escaping_stack_pointer(ctx: AnalysisContext):
    """A stack-frame address observed leaving the function's control.

    The pointer analysis tracks every value holding ``&frame``; if one is
    stored outside the frame or passed to a callee, the address outlives
    the activation it points into — after ``ret`` it dangles.  Escapes are
    also exactly the cases where the lifter's call-site summary for the
    function must stay conservative, so each finding doubles as a
    precision report on the feedback loop."""
    for entry in sorted(ctx.pointer.functions):
        facts = ctx.pointer.functions[entry]
        for escape in facts.escapes:
            # Storing &frame outside the frame outlives the activation for
            # sure; handing it to a callee is ordinary C (`f(&local)`) and
            # only *may* be retained — note it, don't fail the run.
            stored = "stored" in escape.how
            yield Diagnostic(
                rule="escaping-stack-pointer",
                severity="warning" if stored else "info",
                addr=escape.addr,
                function=entry,
                message=(
                    f"address of {escape.region} escapes "
                    f"({escape.how})"
                    + (": it dangles once the frame is torn down"
                       if stored else "")
                ),
            )
