"""repro.verify: the first-class sanity-property API."""

from __future__ import annotations

import pytest

from repro.corpus import buffer_overflow, ret2win
from repro.minicc import compile_source
from repro.verify import verify_binary, verify_function


def test_clean_binary_all_properties_hold():
    binary = compile_source(
        "long main(long x) { if (x < 0) x = 0; return x * 2; }", name="clean")
    report = verify_binary(binary)
    assert report.all_hold
    assert report.return_address_integrity.holds
    assert report.bounded_control_flow.holds
    assert report.calling_convention.holds


def test_overflow_binary_fails_return_address():
    report = verify_binary(buffer_overflow())
    assert not report.all_hold
    assert not report.return_address_integrity.holds
    assert report.return_address_integrity.details


def test_clobbered_register_fails_calling_convention():
    from repro.elf import BinaryBuilder
    from repro.isa import Imm

    builder = BinaryBuilder("clobber")
    builder.text.label("main")
    builder.text.emit("mov", "rbx", Imm(0, 32))
    builder.text.emit("ret")
    report = verify_binary(builder.build(entry="main"))
    assert not report.calling_convention.holds


def test_callback_fails_bounded_control_flow_only():
    source = """
    long invoke(long fp, long x) {
        if (fp == 0) return 0;
        return (*fp)(x);
    }
    """
    binary = compile_source(source, name="cb", entry="invoke",
                            export_labels=True)
    report = verify_function(binary, "invoke")
    assert report.return_address_integrity.holds
    assert report.calling_convention.holds
    assert not report.bounded_control_flow.holds
    assert any("unresolved-call" in d
               for d in report.bounded_control_flow.details)


def test_obligations_surface_in_report():
    report = verify_binary(ret2win())
    assert report.all_hold
    assert report.obligations
    text = str(report)
    assert "MUST PRESERVE" in text
    assert "✔" in text


def test_report_renders_failures():
    report = verify_binary(buffer_overflow())
    text = str(report)
    assert "✘ return address integrity" in text


def test_unclassified_report_never_claims_success():
    # Regression: the per-property fields default to None (not a bogus
    # non-Optional sentinel); a partially-built report must not crash and
    # must not claim the properties hold.
    from repro import lift
    from repro.minicc import compile_source
    from repro.verify.report import SanityReport

    result = lift(compile_source("long main(long n) { return n; }"))
    report = SanityReport(result=result)
    assert report.properties == (None, None, None)
    assert not report.all_hold
    assert "not yet classified" in str(report)
