"""The shared analysis context: one lift result, its CFG, function views,
and a memoized def/use oracle with a conservative fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.hoare.cfg import CFG, build_cfg
from repro.hoare.lifter import LiftResult
from repro.isa import Instruction
from repro.semantics import DefUse, UnsupportedInstruction, def_use
from repro.analysis.cfgview import FunctionView, function_views


@dataclass
class AnalysisContext:
    """Everything a pass needs about one lifted binary."""

    result: LiftResult
    _defuse: dict[int, DefUse] = field(default_factory=dict, repr=False)

    @cached_property
    def cfg(self) -> CFG:
        return build_cfg(self.result)

    @cached_property
    def views(self) -> list[FunctionView]:
        return function_views(self.result, self.cfg)

    @cached_property
    def _views_by_entry(self) -> dict[int, FunctionView]:
        return {view.entry: view for view in self.views}

    def view_of(self, entry: int) -> FunctionView | None:
        # Memoized: the old linear scan was quadratic for passes that
        # resolve a view per call site (entries are unique, so the dict
        # holds exactly the objects the scan would have found).
        return self._views_by_entry.get(entry)

    @cached_property
    def pointer(self):
        """The interprocedural pointer analysis of this lift, run lazily
        on first use (lint rules share one instance per context)."""
        from repro.analysis.pointer.summaries import PointerAnalysis

        return PointerAnalysis(self).run()

    def def_use(self, instr: Instruction) -> DefUse:
        """τ-derived effect summary; conservative top if τ cannot probe it."""
        key = instr.addr if instr.addr is not None else id(instr)
        cached = self._defuse.get(key)
        if cached is not None:
            return cached
        try:
            summary = def_use(instr)
        except (UnsupportedInstruction, ValueError):
            summary = DefUse.unknown()
        self._defuse[key] = summary
        return summary
