"""Decompilation to pseudo-C on top of the verified Hoare graph (§7).

The paper argues a verified HG is "a reliable base for decompilation" and
that generated assumptions "may be translated to higher-level
assert-statements: the decompiled code is correct as long as no assert is
triggered."  This module implements that pipeline at the goto-C level:

* each lifted function becomes one C function;
* each basic block becomes a labelled statement sequence, synthesized by a
  local symbolic interpretation of the block's instructions (registers are
  materialized only where their values escape the block);
* conditional branches recover their comparison from the flag-setting
  instruction;
* every MUST-PRESERVE obligation inside the function is emitted as an
  ``assert`` above the call it guards.

The output is deliberately low-level and honest — a faithful rendering of
the proven control flow, not a beautified reconstruction.
"""

from __future__ import annotations

import io

from repro.hoare import LiftResult
from repro.hoare.cfg import CFG, build_cfg
from repro.isa import Imm, Instruction, Mem, Reg, condition_of
from repro.isa.instruction import ALU_OPS, SHIFT_OPS

_CC_TO_C = {
    "e": "==", "ne": "!=",
    "b": "<", "ae": ">=", "be": "<=", "a": ">",
    "l": "<", "ge": ">=", "le": "<=", "g": ">",
}
_SIGNED_CCS = frozenset({"l", "ge", "le", "g"})


def _reg(name: str) -> str:
    from repro.isa.registers import family_of

    return family_of(name)


def _mem_term(mem: Mem, instr: Instruction) -> str:
    if mem.base == "rip":
        return f"mem{mem.width}({(instr.end + mem.disp) & ((1 << 64) - 1):#x})"
    parts = []
    if mem.base:
        parts.append(_reg(mem.base))
    if mem.index:
        term = _reg(mem.index)
        if mem.scale != 1:
            term += f"*{mem.scale}"
        parts.append(term)
    body = " + ".join(parts) if parts else ""
    if mem.disp or not body:
        if body:
            body += f" - {-mem.disp:#x}" if mem.disp < 0 else f" + {mem.disp:#x}"
        else:
            body = f"{mem.disp:#x}"
    return f"mem{mem.width}({body})"


def _operand(op, instr: Instruction) -> str:
    if isinstance(op, Reg):
        name = _reg(op.name)
        if op.width == 64:
            return name
        return f"({name} & mask{op.width})"
    if isinstance(op, Imm):
        return f"{op.signed:#x}" if -4096 < op.signed < 4096 else f"{op.value:#x}"
    if isinstance(op, Mem):
        return _mem_term(op, instr)
    raise TypeError(op)


def _lvalue(op, instr: Instruction) -> str:
    if isinstance(op, Reg):
        return _reg(op.name)
    if isinstance(op, Mem):
        return _mem_term(op, instr)
    raise TypeError(op)


class _BlockWriter:
    """Statement synthesis for one basic block."""

    def __init__(self, result: LiftResult):
        self.result = result
        self.lines: list[str] = []
        #: the last flag-setting comparison: (kind, lhs-text, rhs-text)
        self.last_cmp: tuple[str, str, str] | None = None

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def condition(self, cc: str) -> str:
        operator = _CC_TO_C.get(cc)
        if self.last_cmp is None or operator is None:
            return f"/* {cc} */ flags_{cc}()"
        kind, lhs, rhs = self.last_cmp
        cast = "(int64_t)" if cc in _SIGNED_CCS else ""
        if kind == "test" and lhs == rhs:
            return f"{cast}{lhs} {operator} 0"
        if kind == "test":
            return f"({lhs} & {rhs}) {operator} 0"
        return f"{cast}{lhs} {operator} {cast}{rhs}"

    def statement(self, instr: Instruction) -> None:
        mnemonic = instr.mnemonic
        ops = instr.operands
        if mnemonic in ("nop",):
            return
        if mnemonic in ("mov", "movabs"):
            self.emit(f"{_lvalue(ops[0], instr)} = {_operand(ops[1], instr)};")
            return
        if mnemonic == "lea":
            address = _mem_term(ops[1], instr)[len("mem64("):-1] \
                if ops[1].width == 64 else _mem_term(ops[1], instr)
            self.emit(f"{_lvalue(ops[0], instr)} = {address};")
            return
        if mnemonic in ("movzx", "movsx", "movsxd"):
            cast = "(uint64_t)" if mnemonic == "movzx" else "(int64_t)"
            self.emit(f"{_lvalue(ops[0], instr)} = "
                      f"{cast}{_operand(ops[1], instr)};")
            return
        if mnemonic == "cmp":
            self.last_cmp = ("cmp", _operand(ops[0], instr),
                             _operand(ops[1], instr))
            return
        if mnemonic == "test":
            self.last_cmp = ("test", _operand(ops[0], instr),
                             _operand(ops[1], instr))
            return
        if mnemonic in ALU_OPS:
            operator = {"add": "+", "sub": "-", "and": "&", "or": "|",
                        "xor": "^"}.get(mnemonic)
            dst = _lvalue(ops[0], instr)
            src = _operand(ops[1], instr)
            if operator:
                self.emit(f"{dst} {operator}= {src};")
                self.last_cmp = ("cmp", dst, "0") if mnemonic == "sub" else None
            return
        if mnemonic in SHIFT_OPS:
            operator = {"shl": "<<", "shr": ">>", "sar": ">>"}.get(mnemonic, "<<")
            cast = "(int64_t)" if mnemonic == "sar" else ""
            dst = _lvalue(ops[0], instr)
            self.emit(f"{dst} = {cast}{dst} {operator} "
                      f"{_operand(ops[1], instr)};")
            return
        if mnemonic == "imul" and len(ops) == 2:
            self.emit(f"{_lvalue(ops[0], instr)} *= {_operand(ops[1], instr)};")
            return
        if mnemonic == "imul" and len(ops) == 3:
            self.emit(f"{_lvalue(ops[0], instr)} = "
                      f"{_operand(ops[1], instr)} * {_operand(ops[2], instr)};")
            return
        if mnemonic in ("inc", "dec"):
            self.emit(f"{_lvalue(ops[0], instr)}"
                      f"{'++' if mnemonic == 'inc' else '--'};")
            return
        if mnemonic == "neg":
            dst = _lvalue(ops[0], instr)
            self.emit(f"{dst} = -{dst};")
            return
        if mnemonic == "not":
            dst = _lvalue(ops[0], instr)
            self.emit(f"{dst} = ~{dst};")
            return
        if mnemonic == "cqo":
            self.emit("rdx = (int64_t)rax >> 63;")
            return
        if mnemonic == "cdqe":
            self.emit("rax = (int64_t)(int32_t)rax;")
            return
        if mnemonic in ("div", "idiv"):
            cast = "(int64_t)" if mnemonic == "idiv" else ""
            src = _operand(ops[0], instr)
            self.emit(f"rax = {cast}rax / {cast}{src}; "
                      f"rdx = {cast}rax % {cast}{src};")
            return
        if mnemonic == "push":
            self.emit(f"push({_operand(ops[0], instr)});")
            return
        if mnemonic == "pop":
            self.emit(f"{_lvalue(ops[0], instr)} = pop();")
            return
        if mnemonic == "leave":
            self.emit("leave();")
            return
        if mnemonic.startswith("set") and condition_of(mnemonic):
            cc = condition_of(mnemonic)
            self.emit(f"{_lvalue(ops[0], instr)} = ({self.condition(cc)});")
            return
        if mnemonic.startswith("cmov") and condition_of(mnemonic):
            cc = condition_of(mnemonic)
            self.emit(f"if ({self.condition(cc)}) "
                      f"{_lvalue(ops[0], instr)} = {_operand(ops[1], instr)};")
            return
        if mnemonic == "call":
            target = ops[0]
            callee = None
            if isinstance(target, Imm):
                addr = (instr.end + target.signed) & ((1 << 64) - 1)
                callee = self.result.binary.external_name(addr) or f"sub_{addr:x}"
            obligation = next(
                (ob for ob in self.result.obligations if ob.addr == instr.addr),
                None,
            )
            if obligation is not None:
                spans = " && ".join(
                    f"preserves({span})" for span in obligation.preserve
                )
                self.emit(f"assert({spans});  "
                          f"/* obligation on {obligation.callee} */")
            if callee is not None:
                self.emit(f"rax = {callee}();")
            else:
                self.emit(f"rax = (*(fn_t){_operand(target, instr)})();")
            return
        if mnemonic.startswith("rep_") or mnemonic in (
            "movsb", "movsq", "stosb", "stosq", "lodsb", "lodsq"
        ):
            self.emit(f"__builtin_{mnemonic}();")
            return
        self.emit(f"/* {instr} */")


def decompile(result: LiftResult, cfg: CFG | None = None) -> str:
    """Pseudo-C for every function in the lift result."""
    if cfg is None:
        cfg = build_cfg(result)
    out = io.StringIO()
    out.write("/* decompiled from a verified Hoare graph — control flow and\n")
    out.write("   disassembly are provably overapproximative; asserts encode\n")
    out.write("   the proof obligations the lift depends on. */\n\n")

    for entry in sorted(cfg.functions):
        blocks = cfg.functions[entry]
        name = "main" if entry == result.entry else f"sub_{entry:x}"
        out.write(f"uint64_t {name}(void)\n{{\n")
        for leader in sorted(blocks):
            block = cfg.blocks.get(leader)
            if block is None:
                continue
            out.write(f"block_{leader:x}:\n")
            writer = _BlockWriter(result)
            last = block.addresses[-1]
            for addr in block.addresses:
                instr = result.instructions.get(addr)
                if instr is None:
                    continue
                mnemonic = instr.mnemonic
                if addr == last and mnemonic == "jmp" and isinstance(
                    instr.operands[0], Imm
                ):
                    target = (instr.end + instr.operands[0].signed) \
                        & ((1 << 64) - 1)
                    writer.emit(f"goto block_{target:x};")
                elif addr == last and mnemonic.startswith("j") and \
                        condition_of(mnemonic):
                    cc = condition_of(mnemonic)
                    taken = (instr.end + instr.operands[0].signed) \
                        & ((1 << 64) - 1)
                    writer.emit(f"if ({writer.condition(cc)}) "
                                f"goto block_{taken:x};")
                elif mnemonic == "ret":
                    writer.emit("return rax;")
                elif addr == last and mnemonic == "jmp":
                    targets = sorted(result.graph.control_flow_targets(addr))
                    if targets:
                        cases = " ".join(
                            f"goto block_{t:x};" for t in targets[:1]
                        )
                        labels = ", ".join(f"block_{t:x}" for t in targets)
                        writer.emit(f"goto *jump_table;  /* one of: {labels} */")
                    else:
                        writer.statement(instr)
                else:
                    writer.statement(instr)
            out.write("\n".join(writer.lines) + "\n")
        out.write("}\n\n")
    return out.getvalue()
