"""Sanity-property reports over lift results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import Binary
from repro.hoare import LiftResult, lift, lift_function


@dataclass
class PropertyResult:
    """Verdict for one sanity property."""

    name: str
    holds: bool
    details: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        mark = "✔" if self.holds else "✘"
        text = f"{mark} {self.name}"
        for detail in self.details:
            text += f"\n    {detail}"
        return text


@dataclass
class SanityReport:
    """The three properties of Section 1, plus the overall verdict.

    The per-property verdicts are ``None`` until :func:`report_from`
    classifies the lift result; a partially-built report never claims the
    properties hold."""

    result: LiftResult
    return_address_integrity: PropertyResult | None = None
    bounded_control_flow: PropertyResult | None = None
    calling_convention: PropertyResult | None = None

    @property
    def properties(self) -> tuple[PropertyResult | None, ...]:
        return (
            self.return_address_integrity,
            self.bounded_control_flow,
            self.calling_convention,
        )

    @property
    def all_hold(self) -> bool:
        return all(p is not None and p.holds for p in self.properties)

    @property
    def obligations(self):
        """The lift is sound *under* these (external-call assumptions)."""
        return self.result.obligations

    def __str__(self) -> str:
        lines = [
            "? (not yet classified)" if p is None else str(p)
            for p in self.properties
        ]
        if self.obligations:
            lines.append(f"under {len(self.obligations)} proof obligation(s):")
            lines += [f"    {ob}" for ob in self.obligations]
        return "\n".join(lines)


def report_from(result: LiftResult) -> SanityReport:
    """Classify a lift result into the three per-property verdicts."""
    ret_errors = [str(e) for e in result.errors if e.kind == "return-address"]
    cc_errors = [str(e) for e in result.errors
                 if e.kind == "calling-convention"]
    other_errors = [str(e) for e in result.errors
                    if e.kind not in ("return-address", "calling-convention")]
    unresolved = [
        str(a) for a in result.annotations
        if a.kind in ("unresolved-jump", "unresolved-call")
    ]

    report = SanityReport(result=result)
    report.return_address_integrity = PropertyResult(
        "return address integrity",
        holds=not ret_errors and not other_errors,
        details=ret_errors + other_errors,
    )
    report.bounded_control_flow = PropertyResult(
        "bounded control flow",
        holds=not unresolved and not other_errors,
        details=unresolved,
    )
    report.calling_convention = PropertyResult(
        "calling convention adherence",
        holds=not cc_errors and not other_errors,
        details=cc_errors,
    )
    return report


def verify_binary(binary: Binary, **lift_kwargs) -> SanityReport:
    """Lift *binary* from its entry point and report the properties."""
    return report_from(lift(binary, **lift_kwargs))


def verify_function(binary: Binary, name: str, **lift_kwargs) -> SanityReport:
    """Lift one exported function (library mode) and report the properties."""
    return report_from(lift_function(binary, name, **lift_kwargs))
