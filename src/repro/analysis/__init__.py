"""Dataflow analyses and binary linting over the verified Hoare graph.

Layers, bottom-up:

* :mod:`repro.analysis.cfgview` — per-function views of the derived CFG.
* :mod:`repro.analysis.engine` — the generic worklist fixpoint engine.
* :mod:`repro.analysis.context` — shared lift result + memoized τ-probed
  def/use summaries (:mod:`repro.semantics.defuse`).
* :mod:`repro.analysis.liveness` / :mod:`~repro.analysis.reaching` /
  :mod:`~repro.analysis.stack` — the concrete analyses; the stack-height
  pass independently re-derives the paper's ``rsp = RSP0 + 8`` return
  invariant.
* :mod:`repro.analysis.lint` / :mod:`~repro.analysis.rules` /
  :mod:`~repro.analysis.render` — the lint engine, builtin rules, and
  text/SARIF output (``python -m repro lint``).
"""

from repro.analysis.cfgview import FunctionView, function_views
from repro.analysis.context import AnalysisContext
from repro.analysis.engine import Dataflow, Solution, solve
from repro.analysis.lint import (
    Diagnostic,
    LintReport,
    all_rules,
    lift_diagnostics,
    register_rule,
    run_lint,
)
from repro.analysis.liveness import live_after, solve_liveness
from repro.analysis.reaching import reaching_before, solve_reaching
from repro.analysis.render import render_json, render_text, to_sarif
from repro.analysis.stack import (
    RetCheck,
    return_heights,
    rsp_invariant_holds,
    solve_stack,
)

__all__ = [
    "AnalysisContext",
    "Dataflow",
    "Diagnostic",
    "FunctionView",
    "LintReport",
    "RetCheck",
    "Solution",
    "all_rules",
    "function_views",
    "lift_diagnostics",
    "live_after",
    "reaching_before",
    "register_rule",
    "render_json",
    "render_text",
    "return_heights",
    "rsp_invariant_holds",
    "run_lint",
    "solve",
    "solve_liveness",
    "solve_reaching",
    "solve_stack",
    "to_sarif",
]
