"""Corpus lint report: the lint rules run over the xenlike corpus.

Two sections: the corpus sweep (how noisy are the rules on the Table 1
binaries, including the deliberately-rejected ones) and the seeded-bug
check (each :mod:`repro.corpus.lintbugs` binary must trigger exactly its
expected rule — the lint analogue of the failures report).
"""

from __future__ import annotations

import io

from repro.analysis import run_lint
from repro.corpus.lintbugs import ALL_LINTBUGS
from repro.corpus.xenlike import build_corpus
from repro.hoare import lift


def generate_lint_report(scale: int = 1,
                         timeout_seconds: float = 10.0,
                         corpus=None) -> str:
    """*corpus* overrides the xenlike corpus (tests use a small one)."""
    out = io.StringIO()
    out.write("Corpus lint report (dataflow rules over the Hoare graph)\n\n")

    if corpus is None:
        corpus = build_corpus(scale=scale)
    rule_totals: dict[str, int] = {}
    out.write(f"{'binary':<28} {'verdict':<9} {'err':>4} {'warn':>5} "
              f"{'info':>5}  rules\n")
    for item in corpus.binaries:
        result = lift(item.binary, timeout_seconds=timeout_seconds)
        report = run_lint(result)
        counts = report.counts()
        rules = sorted({diag.rule for diag in report.diagnostics})
        for diag in report.diagnostics:
            rule_totals[diag.rule] = rule_totals.get(diag.rule, 0) + 1
        verdict = "lifted" if result.verified else "rejected"
        out.write(
            f"{item.directory + '/' + item.name:<28} {verdict:<9} "
            f"{counts['error']:>4} {counts['warning']:>5} "
            f"{counts['info']:>5}  {', '.join(rules) if rules else '-'}\n"
        )
    out.write("\nfindings by rule:\n")
    for rule in sorted(rule_totals):
        out.write(f"  {rule:<28} {rule_totals[rule]:>4}\n")
    if not rule_totals:
        out.write("  (none)\n")

    out.write("\nSeeded-bug binaries (each must trigger its rule):\n")
    for name, (builder, expected_rule) in sorted(ALL_LINTBUGS.items()):
        result = lift(builder())
        report = run_lint(result)
        hits = report.by_rule(expected_rule)
        status = "HIT" if hits else "MISS"
        out.write(f"  {name:<24} {expected_rule:<24} {status}\n")
        for diag in hits:
            out.write(f"    {diag}\n")
    return out.getvalue()
