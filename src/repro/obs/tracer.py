"""The span/event tracer at the heart of :mod:`repro.obs`.

One process-global :data:`tracer` records two things into a bounded
in-memory ring buffer:

* **spans** — named, nested, timed regions (``with tracer.span("lift")``),
  recorded as one event at span *exit* carrying the start timestamp and
  duration, so the Chrome ``trace_event`` exporter can render a flamegraph;
* **typed events** — instantaneous facts from the pipeline's hot loops
  (state enqueued, predicate joined, SMT verdict, annotation emitted,
  sanity-property rejection), each tagged with the instruction address the
  lifter is currently exploring.

Cost discipline (mirrors :mod:`repro.perf.counters`): every instrumented
site is guarded by ``tracer.enabled``, so a disabled tracer costs one
attribute load and a branch.  When enabled, ``emit`` appends one tuple to a
``collections.deque`` with a ``maxlen`` — O(1), no allocation beyond the
tuple, oldest events evicted first.  High-frequency event kinds go through
:meth:`Tracer.emit_sampled`, which records every ``sampling``-th occurrence
of that kind but *counts* all of them, so aggregate counts stay exact while
buffer pressure and overhead drop by the sampling factor.

Determinism: per-kind sample counters live on the tracer and are cleared by
:meth:`Tracer.reset`.  The corpus runner resets the tracer at the start of
every lift task, so which occurrences of a kind get sampled is a pure
function of the task — identical in serial and worker-pool runs.

This module is intentionally dependency-free (stdlib only): every layer of
the stack imports it, so it must import nothing from :mod:`repro`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Iterator, NamedTuple

#: Default ring capacity (events).  ~65k events ≈ a few MB of tuples.
DEFAULT_CAPACITY = 1 << 16

#: Default sampling level for high-frequency event kinds: record 1 in N.
#: The bench harness verifies the enabled-overhead bound at this level.
DEFAULT_SAMPLING = 16


class Event(NamedTuple):
    """One recorded occurrence.  ``ts`` is seconds since the tracer epoch.

    ``addr`` is the instruction address in effect when the event fired
    (the lifter maintains ``tracer.addr``), or None outside lifting.
    ``detail`` is a small dict; values may be arbitrary objects — they are
    stringified only at export time, never on the hot path.
    """

    ts: float
    kind: str
    addr: int | None
    detail: dict[str, Any]


class _NullSpan:
    """The no-op context manager returned by ``span()`` when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """An active span frame; records a ``span`` event on exit."""

    __slots__ = ("tracer", "name", "args", "t0", "depth")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self.depth = len(self.tracer._stack)
        self.tracer._stack.append(self)
        self.t0 = time.perf_counter() - self.tracer._epoch
        return self

    def __exit__(self, *exc) -> None:
        tracer = self.tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        dur = (time.perf_counter() - tracer._epoch) - self.t0
        tracer.counts["span"] = tracer.counts.get("span", 0) + 1
        tracer.append(Event(
            self.t0, "span", tracer.addr,
            {"name": self.name, "dur": dur, "depth": self.depth, **self.args},
        ))


class Tracer:
    """A bounded ring buffer of spans and typed events.

    Attributes read on hot paths (``enabled``, ``addr``, ``sampling``) are
    plain slots; everything else is bookkeeping.
    """

    __slots__ = ("enabled", "sampling", "addr", "counts", "dropped",
                 "_ring", "_stack", "_epoch")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = False
        self.sampling = DEFAULT_SAMPLING
        #: The instruction address currently being explored (lifter-owned).
        self.addr: int | None = None
        #: Exact per-kind occurrence counts (sampled kinds count every
        #: occurrence, not just the recorded ones).
        self.counts: dict[str, int] = {}
        #: Events overwritten by ring wrap-around since the last reset.
        #: A nonzero value means the buffered stream is truncated — causal
        #: reconstruction (provenance) must refuse rather than fabricate
        #: chains from the surviving suffix.
        self.dropped = 0
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._stack: list[_Span] = []
        self._epoch = time.perf_counter()

    # -- configuration -----------------------------------------------------

    def configure(self, enabled: bool | None = None,
                  sampling: int | None = None,
                  capacity: int | None = None) -> None:
        """Adjust the tracer; changing *capacity* drops buffered events."""
        if sampling is not None:
            if sampling < 1:
                raise ValueError("sampling must be >= 1")
            self.sampling = sampling
        if capacity is not None:
            self._ring = deque(self._ring, maxlen=capacity)
        if enabled is not None:
            self.enabled = enabled

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def reset(self) -> None:
        """Drop buffered events, counts, sample state and the span stack;
        restart the timestamp epoch.  Does not touch ``enabled``."""
        self._ring.clear()
        self._stack.clear()
        self.counts = {}
        self.dropped = 0
        self.addr = None
        self._epoch = time.perf_counter()

    @property
    def epoch(self) -> float:
        """The ``perf_counter`` origin of buffered timestamps."""
        return self._epoch

    # -- recording ---------------------------------------------------------

    def append(self, event: Event) -> None:
        """Append one already-built event, counting ring overwrites.

        All recording paths funnel through here so a wrapped ring is never
        silent: when the bounded deque is full, the oldest event is about
        to be overwritten and ``dropped`` counts it."""
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(event)

    def emit(self, kind: str, addr: int | None = None, /,
             **detail: Any) -> None:
        """Record one event.  *addr* defaults to the current ``self.addr``.

        The leading parameters are positional-only so detail keys named
        ``kind`` or ``addr`` (e.g. an annotation's kind) never collide."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.append(Event(
            time.perf_counter() - self._epoch, kind,
            self.addr if addr is None else addr, detail,
        ))

    def emit_sampled(self, kind: str, addr: int | None = None, /,
                     **detail: Any) -> None:
        """Record every ``sampling``-th occurrence of *kind* (count all).

        The sampling phase is the pre-increment exact count, so the two
        bookkeeping jobs share one dict update — this path runs hundreds
        of thousands of times per corpus and its cost is what the <=1.05x
        enabled-overhead bound is spent on."""
        counts = self.counts
        n = counts.get(kind, 0)
        counts[kind] = n + 1
        if n % self.sampling == 0:
            self.append(Event(
                time.perf_counter() - self._epoch, kind,
                self.addr if addr is None else addr, detail,
            ))

    def sample(self, kind: str) -> bool:
        """Count one occurrence of *kind*; True iff it should be recorded.

        The allocation-free half of :meth:`emit_sampled` for sites whose
        detail is expensive to build: callers check ``sample()`` first and
        construct the detail dict (then :meth:`record` it) only for the
        1-in-``sampling`` occurrences that enter the ring.  The SMT cached-
        query path — ~1M calls per scale-1 corpus — relies on this."""
        counts = self.counts
        n = counts.get(kind, 0)
        counts[kind] = n + 1
        return n % self.sampling == 0

    def record(self, kind: str, detail: dict[str, Any],
               addr: int | None = None) -> None:
        """Append one event whose occurrence was already counted by
        :meth:`sample` (does NOT bump ``counts`` — pair the two)."""
        self.append(Event(
            time.perf_counter() - self._epoch, kind,
            self.addr if addr is None else addr, detail,
        ))

    def span(self, name: str, /, **args: Any):
        """A context manager timing a named region (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    # -- inspection --------------------------------------------------------

    def events(self) -> list[Event]:
        """The buffered events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ring)

    def tail(self, limit: int) -> list[Event]:
        """The most recent *limit* buffered events, oldest first."""
        if limit <= 0:
            return []
        ring = self._ring
        if len(ring) <= limit:
            return list(ring)
        return list(ring)[-limit:]


#: The process-global tracer.  Hot sites do
#: ``if tracer.enabled: tracer.emit(...)``.
tracer = Tracer()
