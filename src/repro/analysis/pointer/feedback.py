"""Feeding call-site summaries back into the lifter.

Two-phase protocol: phase 1 lifts the binary context-free (the paper's
Section 4.2 policy, unchanged), the pointer analysis summarizes every
function of that graph, and phase 2 re-lifts with a
:class:`SummaryOracle` — so the cleaning havoc at each call keeps the
clauses provably disjoint from everything the callee MAY write, and the
epoch taint is only raised when the callee writes non-local memory at
all.

Soundness contract: the refinement only *keeps more* of what the caller
already proved; registers are havocked exactly as before, obligations are
still recorded, and Step-2 verification (graph extraction + sanity
properties) re-checks the refined graph in full.  Every refined lift also
records a ``pointer-summary`` assumption naming the phase-1 analysis as
input, so verdicts declare what they rest on.
"""

from __future__ import annotations

from repro.elf import Binary
from repro.perf.counters import counters
from repro.analysis.context import AnalysisContext
from repro.analysis.pointer.domain import Summary
from repro.analysis.pointer.summaries import (
    PointerAnalysis,
    external_summary,
)

#: Counter deltas of refined (phase-2) lifts only, accumulated across
#: :func:`lift_with_summaries` calls since :func:`reset_phase_counters`.
#: The summaries-on side of the bench reads these, because a two-phase
#: lift's *total* counters would double-count the baseline phase.
_PHASE2: dict[str, int] = {}


def reset_phase_counters() -> None:
    _PHASE2.clear()


def phase2_counters() -> dict[str, int]:
    return dict(_PHASE2)


class SummaryOracle:
    """Resolved summaries the lifter consults at each dispatched call.

    ``None`` answers mean "no refinement": the lifter falls back to the
    context-free cleaning, so a missing or TOP summary degrades exactly
    to the paper's policy."""

    def __init__(self, internal: dict[int, Summary]) -> None:
        self.internal = dict(internal)

    def for_internal(self, entry: int) -> Summary | None:
        summary = self.internal.get(entry)
        if summary is None or summary.is_top:
            return None
        return summary

    def for_external(self, name: str) -> Summary | None:
        summary = external_summary(name)
        return None if summary.is_top else summary


def build_oracle(result) -> SummaryOracle:
    """Run the pointer analysis over one lift result and package the
    non-TOP summaries for the lifter."""
    analysis = PointerAnalysis(AnalysisContext(result)).run()
    return SummaryOracle({
        entry: summary
        for entry, summary in analysis.summaries.items()
        if not summary.is_top
    })


def lift_with_summaries(binary: Binary, **kwargs):
    """The two-phase ``lift(..., pointer_summaries=True)`` implementation.

    Both phases get the caller's full option set (including the CPU-time
    budget: the phases are independent fixpoints)."""
    from repro.hoare.lifter import lift_uncached

    base = lift_uncached(binary, **kwargs)
    oracle = build_oracle(base)
    before = counters.snapshot()
    refined = lift_uncached(binary, summaries=oracle, **kwargs)
    for name, delta in counters.delta(before, counters.snapshot()).items():
        _PHASE2[name] = _PHASE2.get(name, 0) + delta
    return refined
