"""Live progress heartbeats for long corpus runs.

ROADMAP item 1 (the ``repro serve`` daemon) needs machine-readable liveness
while a corpus lifts: which task is running, how many are done, current
throughput, queue depth.  This module defines that wire format — one JSON
object per line — and a :class:`ProgressEmitter` that
:func:`repro.eval.runner.run_corpus` drives via its ``progress=`` hook.
The daemon is expected to reuse the stream verbatim, so the schema is
validated on *emission* (a malformed heartbeat is a bug here, not in the
consumer) and :func:`validate_progress_jsonl` rechecks whole streams in
tests and tooling.

Event kinds, in stream order::

    {"kind": "corpus_started",  "seq": 0, "ts": ..., "total": 12,
     "scale": 1, "jobs": 2}
    {"kind": "task_started",    "seq": 1, "ts": ..., "task": "gzip",
     "queue_depth": 11}
    {"kind": "task_finished",   "seq": 2, "ts": ..., "task": "gzip",
     "outcome": "lifted", "done": 1, "total": 12, "instructions": 4096,
     "seconds": 1.25, "instrs_total": 4096, "instrs_per_second": 3276.8,
     "queue_depth": 10}
    ...
    {"kind": "corpus_finished", "seq": N, "ts": ..., "done": 12,
     "total": 12, "instrs_total": 60000, "seconds": 18.1,
     "instrs_per_second": 3314.9}

``seq`` is a gap-free counter (consumers detect lost lines), ``ts`` is Unix
time, ``queue_depth`` counts tasks handed to the pool but not yet finished,
and throughput figures are cumulative (instructions so far / wall so far).

Stdlib-only, imports nothing from :mod:`repro` outside :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Iterable

#: kind -> {field: allowed types}; every event also carries the COMMON set.
_COMMON_FIELDS: dict[str, tuple] = {
    "kind": (str,),
    "seq": (int,),
    "ts": (int, float),
}

PROGRESS_EVENT_KINDS: dict[str, dict[str, tuple]] = {
    "corpus_started": {"total": (int,), "scale": (int,), "jobs": (int,)},
    "task_started": {"task": (str,), "queue_depth": (int,)},
    "task_finished": {
        "task": (str,),
        "outcome": (str,),
        "done": (int,),
        "total": (int,),
        "instructions": (int,),
        "seconds": (int, float),
        "instrs_total": (int,),
        "instrs_per_second": (int, float),
        "queue_depth": (int,),
    },
    "corpus_finished": {
        "done": (int,),
        "total": (int,),
        "instrs_total": (int,),
        "seconds": (int, float),
        "instrs_per_second": (int, float),
    },
    # Job-level heartbeats emitted by the repro serve daemon
    # (:mod:`repro.serve`).  They share this schema and validator so a
    # ``watch`` stream is checked exactly like a corpus progress stream;
    # a corpus job's stream interleaves them with task_started /
    # task_finished events for its per-entry units.
    "job_queued": {
        "job": (str,),
        "tenant": (str,),
        "job_kind": (str,),
        "priority": (int,),
        "queue_depth": (int,),
    },
    "job_started": {"job": (str,), "attempt": (int,)},
    "job_retried": {
        "job": (str,),
        "attempt": (int,),
        "delay": (int, float),
        "reason": (str,),
    },
    "job_finished": {
        "job": (str,),
        "state": (str,),
        "seconds": (int, float),
        "source": (str,),
    },
}

#: The outcomes a task can finish with — the runner's FunctionRecord
#: outcomes plus "error" for infrastructure failures.
TASK_OUTCOMES = frozenset(
    {"lifted", "unprovable", "concurrency", "timeout", "error"})

#: Terminal job states (mirrors ``repro.serve.jobs.JOB_STATES``) and the
#: places a finished job's answer can come from.
JOB_FINAL_STATES = frozenset({"done", "failed", "cancelled"})
JOB_SOURCES = frozenset({"worker", "store", "inflight"})


def validate_progress_obj(obj: Any) -> None:
    """Raise ``ValueError`` unless *obj* is one well-formed progress event."""
    if not isinstance(obj, dict):
        raise ValueError(f"progress event must be an object, got {type(obj).__name__}")
    kind = obj.get("kind")
    if kind not in PROGRESS_EVENT_KINDS:
        raise ValueError(f"unknown progress event kind: {kind!r}")
    required = dict(_COMMON_FIELDS)
    required.update(PROGRESS_EVENT_KINDS[kind])
    for name, types in required.items():
        if name not in obj:
            raise ValueError(f"{kind}: missing field {name!r}")
        value = obj[name]
        # bool is an int subclass; no progress field is boolean.
        if isinstance(value, bool) or not isinstance(value, types):
            raise ValueError(
                f"{kind}: field {name!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}")
    extra = set(obj) - set(required)
    if extra:
        raise ValueError(f"{kind}: unexpected fields {sorted(extra)}")
    if obj["seq"] < 0:
        raise ValueError(f"{kind}: seq must be >= 0")
    if kind == "task_finished" and obj["outcome"] not in TASK_OUTCOMES:
        raise ValueError(
            f"task_finished: outcome {obj['outcome']!r} not in "
            f"{sorted(TASK_OUTCOMES)}")
    if kind == "job_finished":
        if obj["state"] not in JOB_FINAL_STATES:
            raise ValueError(
                f"job_finished: state {obj['state']!r} not in "
                f"{sorted(JOB_FINAL_STATES)}")
        if obj["source"] not in JOB_SOURCES:
            raise ValueError(
                f"job_finished: source {obj['source']!r} not in "
                f"{sorted(JOB_SOURCES)}")


def validate_progress_jsonl(text: str) -> int:
    """Validate a whole heartbeat stream; returns the event count.

    Checks JSON well-formedness and per-event schema plus the stream
    invariants: gap-free ``seq`` from 0 and exactly one ``corpus_started``
    first / ``corpus_finished`` last when present.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    expected_seq = 0
    for i, line in enumerate(lines):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {i + 1}: not JSON: {exc}") from None
        validate_progress_obj(obj)
        if obj["seq"] != expected_seq:
            raise ValueError(
                f"line {i + 1}: seq {obj['seq']} != expected {expected_seq}")
        expected_seq += 1
        if obj["kind"] == "corpus_started" and i != 0:
            raise ValueError(f"line {i + 1}: corpus_started not first")
        if obj["kind"] == "corpus_finished" and i != len(lines) - 1:
            raise ValueError(f"line {i + 1}: corpus_finished not last")
    return len(lines)


class ProgressEmitter:
    """Folds runner callbacks into validated heartbeat events.

    *sink* is either a callable (receives each event dict) or a text
    stream (receives one JSON line per event, flushed so ``tail -f`` and
    pipe consumers see heartbeats immediately).  Every event is validated
    against the schema before it reaches the sink.
    """

    def __init__(self, sink: "Callable[[dict], None] | Any") -> None:
        if callable(sink):
            self._emit_obj = sink
        else:
            def _write(obj: dict, _sink=sink) -> None:
                _sink.write(json.dumps(obj, sort_keys=True) + "\n")
                flush = getattr(_sink, "flush", None)
                if flush is not None:
                    flush()
            self._emit_obj = _write
        self._seq = 0
        self._t0 = time.time()
        self._start = time.perf_counter()
        self.total = 0
        self.done = 0
        self.instrs_total = 0

    # -- internals ---------------------------------------------------------

    def _emit(self, kind: str, **fields: Any) -> None:
        event = {"kind": kind, "seq": self._seq, "ts": round(time.time(), 6),
                 **fields}
        validate_progress_obj(event)
        self._seq += 1
        self._emit_obj(event)

    def _elapsed(self) -> float:
        return time.perf_counter() - self._start

    # -- runner-facing callbacks ------------------------------------------

    def corpus_started(self, total: int, scale: int, jobs: int) -> None:
        self.total = total
        self._emit("corpus_started", total=total, scale=scale, jobs=jobs)

    def task_started(self, task: str, queue_depth: int) -> None:
        self._emit("task_started", task=task, queue_depth=queue_depth)

    def task_finished(self, task: str, outcome: str, instructions: int,
                      seconds: float, queue_depth: int) -> None:
        self.done += 1
        self.instrs_total += instructions
        elapsed = self._elapsed()
        rate = self.instrs_total / elapsed if elapsed > 0 else 0.0
        self._emit(
            "task_finished", task=task, outcome=outcome, done=self.done,
            total=self.total, instructions=instructions,
            seconds=round(seconds, 6), instrs_total=self.instrs_total,
            instrs_per_second=round(rate, 2), queue_depth=queue_depth,
        )

    def corpus_finished(self) -> None:
        elapsed = self._elapsed()
        rate = self.instrs_total / elapsed if elapsed > 0 else 0.0
        self._emit(
            "corpus_finished", done=self.done, total=self.total,
            instrs_total=self.instrs_total, seconds=round(elapsed, 6),
            instrs_per_second=round(rate, 2),
        )


def as_emitter(progress: "ProgressEmitter | Callable[[dict], None] | Any | None",
               ) -> "ProgressEmitter | None":
    """Coerce ``run_corpus``'s ``progress=`` argument: None passes through,
    a ready emitter is used as-is, anything else becomes a sink."""
    if progress is None or isinstance(progress, ProgressEmitter):
        return progress
    return ProgressEmitter(progress)


def iter_progress_objects(text: str) -> Iterable[dict]:
    """Parse a heartbeat stream into event dicts (no validation)."""
    for line in text.splitlines():
        if line.strip():
            yield json.loads(line)
