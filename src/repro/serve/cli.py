"""``python -m repro serve`` / ``python -m repro client``.

The daemon::

    python -m repro serve --socket /tmp/repro.sock --workers 2
    # SIGTERM (or `client drain`) => finish in-flight jobs, exit 0

The client (every verb prints one JSON object to stdout)::

    python -m repro client --socket /tmp/repro.sock submit-lift ./a.out
    python -m repro client --socket /tmp/repro.sock status j-1
    python -m repro client --socket /tmp/repro.sock wait j-1
    python -m repro client --socket /tmp/repro.sock result j-1
    python -m repro client --socket /tmp/repro.sock cancel j-1
    python -m repro client --socket /tmp/repro.sock watch j-1
    python -m repro client --socket /tmp/repro.sock stats
    python -m repro client --socket /tmp/repro.sock drain

Client exit codes: 0 = ok, 1 = structured server error (the JSON error
object is printed), 2 = cannot talk to the daemon at all.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.serve.client import JobError, ServeClient, ServeError
from repro.serve.server import Server, ServerConfig


def serve_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the lifting-as-a-service daemon.")
    parser.add_argument("--socket", required=True, dest="socket_path",
                        help="unix socket path to listen on")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-retries", type=int, default=3,
                        help="worker crashes tolerated per unit before it "
                             "fails with diagnostics (default 3)")
    parser.add_argument("--retry-base", type=float, default=0.25,
                        help="first retry backoff in seconds (doubles per "
                             "crash, capped by --retry-cap)")
    parser.add_argument("--retry-cap", type=float, default=5.0)
    parser.add_argument("--cache", action="store_true", default=None,
                        dest="cache",
                        help="answer duplicate lifts from the persistent "
                             "store (default: the REPRO_CACHE environment "
                             "variable)")
    parser.add_argument("--no-cache", action="store_false", dest="cache")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--allow-chaos", action="store_true",
                        help="accept chaos jobs (fault-injection tests and "
                             "CI smoke only)")
    parser.add_argument("--drain-grace", type=float, default=300.0,
                        help="seconds a drain waits for in-flight work "
                             "before forcing it (exit 1)")
    parser.add_argument("--timeout-seconds", type=float, default=10.0,
                        help="default per-lift wall budget")
    parser.add_argument("--max-states", type=int, default=10_000,
                        help="default per-lift state cap")
    args = parser.parse_args(argv)

    config = ServerConfig(
        socket_path=args.socket_path, workers=args.workers,
        max_retries=args.max_retries, retry_base=args.retry_base,
        retry_cap=args.retry_cap, cache=args.cache,
        cache_dir=args.cache_dir, allow_chaos=args.allow_chaos,
        drain_grace=args.drain_grace,
        default_timeout_seconds=args.timeout_seconds,
        default_max_states=args.max_states)
    server = Server(config)
    server.start()

    def _drain(signum, _frame):
        print(f"repro serve: signal {signum}, draining", file=sys.stderr,
              flush=True)
        server.begin_drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(f"repro serve: listening on {args.socket_path} "
          f"({args.workers} workers, cache "
          f"{'on' if server._store is not None else 'off'})", flush=True)
    code = server.wait()
    print(f"repro serve: drained, exit {code}", flush=True)
    return code


def _client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro client",
        description="Talk to a running repro serve daemon.")
    parser.add_argument("--socket", required=True, dest="socket_path")
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="socket/wait timeout in seconds")
    sub = parser.add_subparsers(dest="verb", required=True)

    submit_lift = sub.add_parser("submit-lift",
                                 help="submit one ELF lift job")
    submit_lift.add_argument("path")
    submit_corpus = sub.add_parser("submit-corpus",
                                   help="submit a corpus verification job")
    submit_corpus.add_argument("--scale", type=int, default=1)
    submit_chaos = sub.add_parser("submit-chaos",
                                  help="submit a chaos probe (server must "
                                       "allow chaos)")
    submit_chaos.add_argument("action")
    submit_chaos.add_argument("--seconds", type=float, default=None)
    submit_chaos.add_argument("--attempts", type=int, default=None)
    for submit in (submit_lift, submit_corpus):
        submit.add_argument("--engine", choices=["tau", "uop"], default=None,
                            help="transfer engine the workers lift with "
                                 "(default: the server's default, tau)")
    for submit in (submit_lift, submit_corpus, submit_chaos):
        submit.add_argument("--priority", type=int, default=0)
        submit.add_argument("--no-cache", action="store_false",
                            dest="use_cache", default=None)
        submit.add_argument("--wait", action="store_true",
                            help="block until the job finishes, then print "
                                 "its result")
    for verb in ("status", "result", "cancel", "watch", "wait"):
        verb_parser = sub.add_parser(verb)
        verb_parser.add_argument("job_id")
    sub.add_parser("stats")
    sub.add_parser("ping")
    sub.add_parser("drain")
    return parser


def _build_spec(args) -> dict:
    if args.verb == "submit-lift":
        spec: dict = {"kind": "lift", "path": args.path}
    elif args.verb == "submit-corpus":
        spec = {"kind": "corpus", "scale": args.scale}
    else:
        spec = {"kind": "chaos", "action": args.action}
        if args.seconds is not None:
            spec["seconds"] = args.seconds
        if args.attempts is not None:
            spec["attempts"] = args.attempts
    if args.priority:
        spec["priority"] = args.priority
    if args.use_cache is not None:
        spec["cache"] = args.use_cache
    if getattr(args, "engine", None) is not None:
        spec["options"] = {"engine": args.engine}
    return spec


def client_main(argv=None) -> int:
    args = _client_parser().parse_args(argv)
    try:
        client = ServeClient(args.socket_path, tenant=args.tenant,
                             timeout=args.timeout)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with client:
            if args.verb.startswith("submit-"):
                response = client.submit(_build_spec(args))
                if args.wait:
                    client.wait(response["job_id"], timeout=args.timeout)
                    response = client.result(response["job_id"])
            elif args.verb == "status":
                response = {"ok": True, "job": client.status(args.job_id)}
            elif args.verb == "result":
                response = client.result(args.job_id)
            elif args.verb == "cancel":
                response = client.cancel(args.job_id)
            elif args.verb == "wait":
                job = client.wait(args.job_id, timeout=args.timeout)
                response = {"ok": True, "job": job}
            elif args.verb == "watch":
                final = client.watch(
                    args.job_id,
                    on_event=lambda event: print(
                        json.dumps(event, sort_keys=True), flush=True))
                response = {"ok": True, "job": final}
            elif args.verb == "stats":
                response = {"ok": True, "stats": client.stats()}
            elif args.verb == "ping":
                response = client.ping()
            elif args.verb == "drain":
                response = client.drain()
            else:
                raise AssertionError(args.verb)
    except JobError as exc:
        print(json.dumps({"ok": False,
                          "error": {"code": exc.code,
                                    "message": exc.message}},
                         sort_keys=True))
        return 1
    except (ServeError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(response, sort_keys=True))
    return 0
