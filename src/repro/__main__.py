"""Command-line lifter: ``python -m repro <command> <binary> [options]``.

Commands:

* ``lift``  — lift an ELF binary, print the verdict, disassembly summary,
  annotations and proof obligations;
* ``disasm`` — print the proven disassembly;
* ``cfg``   — emit a Graphviz DOT control-flow graph derived from the HG;
* ``decompile`` — emit goto-style pseudo-C with obligation asserts;
* ``export`` — write the Isabelle/HOL theory for the lifted binary;
* ``check`` — replay every Hoare triple against the concrete emulator;
* ``diff``  — lift two binaries (original, patched) and compare the HGs;
* ``lint``  — run the dataflow lint rules; exit 0 = clean, 1 = findings
  (error/warning severity), 2 = could not load or lift at all;
* ``pointer`` — run the interprocedural pointer analysis and print the
  per-function call-site summaries, escapes and the access-precision
  table; ``--gate`` additionally runs the concrete differential
  soundness gate (exit 1 on any miss), ``--verbose`` lists every
  classified access site;
* ``trace`` — lift under full-fidelity tracing (sampling 1) and report
  the event stream: ``--format text`` (summary + provenance chains),
  ``--format jsonl`` (one event per line), ``--format chrome``
  (Chrome ``trace_event`` JSON for chrome://tracing / Perfetto);
* ``profile`` — lift under full-fidelity tracing and fold the capture
  into the phase/address cost profile: ``--format text`` (self-time
  table + top-N addresses), ``--format collapsed`` (collapsed-stack
  flamegraph input for flamegraph.pl / speedscope);
* ``serve`` — run the lifting-as-a-service daemon (JSONL over a Unix
  socket, persistent worker pool, priority queue, crash retries, store
  dedup, graceful SIGTERM drain — see :mod:`repro.serve`);
* ``client`` — talk to a running daemon: ``submit-lift`` /
  ``submit-corpus`` / ``status`` / ``result`` / ``cancel`` / ``watch`` /
  ``wait`` / ``stats`` / ``drain``;
* ``cache`` — persistent lift-store maintenance: ``cache stats`` prints
  entry/byte totals plus the lifetime telemetry persisted in the index
  (hits, misses, stores, evictions, hit-rate, entry ages); ``cache
  clear`` empties the store.  Lifting commands take ``--cache`` /
  ``--no-cache`` / ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import sys

from repro.elf import load_binary
from repro.hoare import lift, lift_function


def _load_and_lift(args) -> "LiftResult":
    binary = load_binary(args.binary)
    cache = getattr(args, "cache", None)
    cache_dir = getattr(args, "cache_dir", None)
    pointer_summaries = getattr(args, "pointer_summaries", False)
    engine = getattr(args, "engine", "tau")
    if getattr(args, "function", None):
        return lift_function(binary, args.function, max_states=args.max_states,
                             timeout_seconds=args.timeout,
                             cache=cache, cache_dir=cache_dir,
                             pointer_summaries=pointer_summaries,
                             engine=engine)
    return lift(binary, max_states=args.max_states,
                timeout_seconds=args.timeout,
                cache=cache, cache_dir=cache_dir,
                pointer_summaries=pointer_summaries,
                engine=engine)


def _run_cache(args) -> int:
    """``python -m repro cache <stats|clear>``: lift-store maintenance."""
    from repro.perf.store import LiftStore

    store = LiftStore(root=args.cache_dir)
    action = args.binary  # positional slot doubles as the cache action
    if action == "stats":
        stats = store.stats()
        telemetry = stats["telemetry"]
        print(f"lift store at {stats['root']}")
        print(f"  entries   {stats['entries']}")
        print(f"  bytes     {stats['bytes']}")
        print(f"  max bytes {stats['max_bytes']}")
        print("lifetime telemetry (persisted in the index):")
        print(f"  hits      {telemetry['hits']}")
        print(f"  misses    {telemetry['misses']}")
        print(f"  stores    {telemetry['stores']}")
        print(f"  evictions {telemetry['evictions']}")
        print(f"  hit rate  {stats['hit_rate']:.1%}")
        if stats["oldest_entry_age"] is not None:
            print(f"  oldest entry {stats['oldest_entry_age']:.0f}s old")
            print(f"  newest entry {stats['newest_entry_age']:.0f}s old")
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
        return 0
    print(f"error: unknown cache action {action!r} (use stats or clear)",
          file=sys.stderr)
    return 2


def _print_lift(result) -> int:
    print(result.summary())
    if result.errors:
        print("\nverification errors (the binary was REJECTED):")
        for error in result.errors:
            print(f"  {error}")
    if result.annotations:
        print("\nunsoundness annotations:")
        for annotation in result.annotations:
            print(f"  {annotation}")
    if result.obligations:
        print("\nproof obligations (the lift is sound under these):")
        for obligation in result.obligations:
            print(f"  {obligation}")
    return 0 if result.verified else 1


def _run_trace(args) -> int:
    """``python -m repro trace``: lift once under tracing, report."""
    import repro.obs as obs

    # Tracing measures a real lift — a store hit would yield no events.
    args.cache = False
    prior = obs.save_state()
    obs.reset()
    obs.enable(sampling=args.sampling, capacity=args.capacity)
    try:
        result = _load_and_lift(args)
        events = obs.tracer.events()
        counts = dict(obs.tracer.counts)
        capacity = obs.tracer.capacity
        dropped = obs.tracer.dropped
        metrics_snapshot = obs.metrics.snapshot()
    finally:
        obs.restore_state(prior)

    if args.trace_format == "jsonl":
        text = obs.events_jsonl(events)
    elif args.trace_format == "chrome":
        text = obs.chrome_trace_json(events)
    else:
        summary = obs.render_trace_summary(events, metrics_snapshot,
                                           counts, capacity, dropped=dropped)
        try:
            provenance = obs.build_provenance(result, events, dropped=dropped)
        except obs.TruncatedTraceError as exc:
            print(summary)
            print(f"error: {exc}", file=sys.stderr)
            return 1
        text = summary + "\n" + provenance.render() + "\n"

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _run_profile(args) -> int:
    """``python -m repro profile``: lift once, fold into a cost profile."""
    import repro.obs as obs
    from repro.obs.profile import (
        build_profile,
        collapsed_stacks,
        phases,
        render_profile,
    )

    # Profiling measures a real lift — a store hit would attribute nothing.
    args.cache = False
    prior = obs.save_state()
    obs.reset()
    obs.enable(sampling=args.sampling, capacity=args.capacity)
    phases.profile_mode = True
    try:
        result = _load_and_lift(args)
        profile = build_profile(
            obs.tracer.events(),
            dict(obs.tracer.counts),
            phases_snapshot=phases.snapshot(),
            wall_seconds=result.stats.seconds,
            sampling=obs.tracer.sampling,
            stacks=dict(phases.stacks),
            events_dropped=obs.tracer.dropped,
        )
    finally:
        phases.profile_mode = False
        obs.restore_state(prior)

    if args.trace_format == "collapsed":
        text = collapsed_stacks(profile.stacks)
        text = text + "\n" if text else ""
    else:
        title = (f"Profile: {result.binary.name} "
                 f"(entry {result.entry:#x})")
        opcode_stats = None
        if getattr(args, "engine", "tau") == "uop":
            from repro.uop import opcode_stats as uop_opcode_stats

            opcode_stats = uop_opcode_stats()
        text = render_profile(profile, title=title,
                              opcode_stats=opcode_stats)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def main(argv=None) -> int:
    # The serve/client commands have their own flag grammars (no binary
    # positional), so they are routed before the lifter parser sees them.
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        from repro.serve.cli import client_main

        return client_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Provably overapproximative x86-64 binary lifter "
                    "(PLDI 2022 reproduction).",
    )
    parser.add_argument("command", choices=["lift", "disasm", "cfg", "decompile",
                                            "export", "check", "diff", "lint",
                                            "pointer", "trace", "profile",
                                            "cache"])
    parser.add_argument("binary", help="path to an ELF binary "
                                       "(cache command: stats|clear)")
    parser.add_argument("patched", nargs="?",
                        help="second binary (diff command only)")
    parser.add_argument("--function", help="lift one exported function "
                                           "(shared-object mode)")
    parser.add_argument("--max-states", type=int, default=50_000)
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock budget in seconds")
    parser.add_argument("--output", "-o", help="output file (cfg/export)")
    parser.add_argument("--json", action="store_true",
                        help="emit the lint report as SARIF-lite JSON")
    parser.add_argument("--rule", action="append", dest="rules", metavar="ID",
                        help="run only this lint rule (repeatable)")
    parser.add_argument("--format", choices=["text", "jsonl", "chrome",
                                             "collapsed"],
                        default="text", dest="trace_format",
                        help="trace/profile output format (default text; "
                             "collapsed = flamegraph input, profile only)")
    parser.add_argument("--sampling", type=int, default=1,
                        help="trace/profile: record 1 in N high-frequency "
                             "events (default 1 = everything, so provenance "
                             "chains are complete)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="trace/profile: event ring capacity (default "
                             "the obs layer's; raise it if the trace "
                             "reports dropped events)")
    parser.add_argument("--cache", action="store_true", default=None,
                        dest="cache",
                        help="serve lifts from the persistent lift store "
                             "(default: the REPRO_CACHE environment "
                             "variable)")
    parser.add_argument("--no-cache", action="store_false", dest="cache",
                        help="disable the persistent lift store even if "
                             "REPRO_CACHE is set")
    parser.add_argument("--cache-dir", default=None,
                        help="lift-store directory (default REPRO_CACHE_DIR "
                             "or ~/.cache/repro-lift)")
    parser.add_argument("--engine", choices=["tau", "uop"], default="tau",
                        help="transfer engine: tau (reference tree-walker) "
                             "or uop (compiled micro-op interpreter); both "
                             "produce identical verdicts")
    parser.add_argument("--pointer-summaries", action="store_true",
                        dest="pointer_summaries",
                        help="two-phase lift: feed pointer call-site "
                             "summaries back into the call cleaning")
    parser.add_argument("--gate", action="store_true",
                        help="pointer: also run the concrete differential "
                             "soundness gate")
    parser.add_argument("--verbose", action="store_true",
                        help="pointer: list every classified access site")
    args = parser.parse_args(argv)

    if args.command == "cache":
        return _run_cache(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "profile":
        return _run_profile(args)

    if args.command == "lint":
        from repro.analysis import render_json, render_text, run_lint

        try:
            result = _load_and_lift(args)
            report = run_lint(result, rules=args.rules)
        except KeyError as exc:
            print(f"error: unknown lint rule {exc.args[0]!r}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_json(report) if args.json else render_text(report))
        return report.exit_code

    if args.command == "pointer":
        from repro.analysis.context import AnalysisContext
        from repro.analysis.pointer import run_gate, render_pointer_report

        try:
            # The analysis reads the context-free lift; --pointer-summaries
            # would only change the graph being summarized, not the facts.
            args.pointer_summaries = False
            result = _load_and_lift(args)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        analysis = AnalysisContext(result).pointer
        gate = None
        if args.gate:
            gate = run_gate(result.binary, result=result, analysis=analysis)
        print(render_pointer_report(analysis, gate=gate, verbose=args.verbose))
        return 0 if gate is None or gate.ok else 1

    if args.command == "diff":
        if not args.patched:
            parser.error("diff requires two binaries")
        from repro.hoare.diff import diff_lifts

        original = lift(load_binary(args.binary), max_states=args.max_states,
                        timeout_seconds=args.timeout,
                        cache=args.cache, cache_dir=args.cache_dir)
        patched = lift(load_binary(args.patched), max_states=args.max_states,
                       timeout_seconds=args.timeout,
                       cache=args.cache, cache_dir=args.cache_dir)
        diff = diff_lifts(original, patched)
        print(diff.summary())
        for addr, (old, new) in sorted(diff.changed_instructions.items()):
            print(f"  ~ {old}  ->  {new}")
        for addr, text in sorted(diff.added_instructions.items()):
            print(f"  + {text}")
        for addr, text in sorted(diff.removed_instructions.items()):
            print(f"  - {text}")
        for text in diff.added_obligations:
            print(f"  + OBLIGATION {text}")
        for text in diff.removed_obligations:
            print(f"  - OBLIGATION {text}")
        return 0 if diff.is_clean else 1

    result = _load_and_lift(args)

    if args.command == "lift":
        return _print_lift(result)
    if args.command == "disasm":
        for addr in sorted(result.instructions):
            print(result.instructions[addr])
        return 0 if result.verified else 1
    if args.command == "cfg":
        from repro.hoare.cfg import build_cfg, to_dot

        dot = to_dot(build_cfg(result), result)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(dot)
            print(f"wrote {args.output}")
        else:
            print(dot)
        return 0
    if args.command == "decompile":
        from repro.decompile import decompile

        text = decompile(result)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0
    if args.command == "export":
        from repro.export import export_theory

        theory = export_theory(result)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(theory)
            print(f"wrote {args.output}")
        else:
            print(theory)
        return 0
    if args.command == "check":
        from repro.export import check_triples

        report = check_triples(result)
        print(report.summary())
        for check in report.checks:
            if check.status == "FAILED":
                print(f"  FAILED @{check.instr_addr:#x}: {check.detail}")
        return 0 if report.failed == 0 else 1
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
