"""The persistent run-history layer and its regression gate.

Contracts under test:

* append/read round-trip: canonical record (timing-free, deterministic
  metrics only) plus the timing sidecar joined by id;
* run keys partition history by kind/scale/jobs/options;
* the rolling baseline: deterministic metrics against the latest
  same-fingerprint record, timing against the window median;
* the gate catches an injected 2x slowdown, an SMT query-count
  regression, and a deterministic-metric change under an unchanged
  semantics fingerprint — and renders a readable diff for each;
* the ``python -m repro.eval history`` verb (list + --check exit codes);
* bench plumbing: ``record_history`` lands a record derived from a
  corpus report.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.history import (
    CANONICAL_METRICS,
    HistoryStore,
    Thresholds,
    check_latest,
    check_regression,
    gc_stats,
    peak_rss_kb,
    render_history,
    rolling_baseline,
    run_key,
)


def _append(store, *, smt=1000, joins=500, instructions=5000, functions=10,
            rate=200.0, rss=40_000, fingerprint="f" * 16, options=None):
    return store.append(
        kind="bench", scale=1, jobs=1, options=options or {"timeout": 10.0},
        fingerprint=fingerprint,
        metrics={"instructions": instructions, "functions": functions,
                 "smt_queries": smt, "lift_joins": joins},
        timing={"instrs_per_second": rate, "lift_seconds": 2.0},
    )


@pytest.fixture()
def store(tmp_path) -> HistoryStore:
    return HistoryStore(tmp_path / "history")


# -- store round-trip ------------------------------------------------------

def test_append_and_read_round_trip(store):
    record = _append(store, smt=123, joins=45)
    assert record["id"].startswith("00000-")
    loaded = store.records()
    assert len(loaded) == 1
    assert loaded[0] == record
    assert loaded[0]["smt_queries"] == 123
    assert loaded[0]["fingerprint"] == "f" * 16
    # The canonical record carries no wall-clock quantity at all.
    assert not any("second" in k or k == "ts" for k in loaded[0])
    # The sidecar does, joined by id, plus environment and RSS/GC.
    timing = store.timings()[record["id"]]
    assert timing["instrs_per_second"] == 200.0
    assert "ts" in timing and "python" in timing
    assert timing["peak_rss_kb"] >= 0 and "gc" in timing


def test_sequence_numbers_and_ids_are_monotone(store):
    first = _append(store)
    second = _append(store)
    assert (first["seq"], second["seq"]) == (0, 1)
    assert first["id"] != second["id"]
    assert [r["seq"] for r in store.records()] == [0, 1]


def test_run_key_partitions_by_options(store):
    _append(store, options={"timeout": 10.0})
    _append(store, options={"timeout": 99.0})
    assert len(store.keys()) == 2
    key = run_key("bench", 1, 1, {"timeout": 10.0})
    assert key.startswith("bench/scale-1/jobs-1/")
    assert len(store.records(key)) == 1
    # Option insertion order does not change the key.
    assert (run_key("bench", 1, 1, {"a": 1, "b": 2})
            == run_key("bench", 1, 1, {"b": 2, "a": 1}))


def test_environment_probes_do_not_crash():
    assert peak_rss_kb() >= 0
    stats = gc_stats()
    assert set(stats) == {"collections", "collected", "uncollectable"}


# -- rolling baseline ------------------------------------------------------

def test_rolling_baseline_prefers_matching_fingerprint(store):
    _append(store, smt=100, fingerprint="a" * 16)
    _append(store, smt=200, fingerprint="b" * 16)
    runs = store.runs()
    baseline = rolling_baseline(runs, key="k", fingerprint="a" * 16)
    assert baseline.deterministic["smt_queries"] == 100
    baseline = rolling_baseline(runs, key="k", fingerprint="c" * 16)
    assert baseline.deterministic is None
    # The timing median spans the window regardless of fingerprint.
    assert baseline.instrs_per_second == 200.0
    assert baseline.samples == 2


def test_rolling_baseline_median_is_robust_to_one_outlier(store):
    for rate in (100.0, 1000.0, 110.0, 105.0, 95.0):
        _append(store, rate=rate)
    baseline = rolling_baseline(store.runs(), key="k", fingerprint="f" * 16,
                                window=5)
    assert baseline.instrs_per_second == 105.0


# -- the gate --------------------------------------------------------------

def test_gate_passes_on_stable_history(store):
    for _ in range(3):
        _append(store)
    results = check_latest(store)
    assert len(results) == 1 and results[0].ok
    rendered = results[0].render()
    assert "PASS" in rendered and "smt_queries" in rendered


def test_gate_catches_injected_2x_slowdown(store):
    for _ in range(3):
        _append(store, rate=200.0)
    _append(store, rate=100.0)   # exactly 0.5x: still allowed
    assert check_latest(store)[0].ok
    _append(store, rate=99.0)    # below the 0.5x floor: regression
    results = check_latest(store)
    assert not results[0].ok
    rendered = results[0].render()
    assert "FAIL" in rendered
    assert any("instrs_per_second" in f for f in results[0].failures)


def test_gate_catches_smt_query_count_regression(store):
    _append(store, smt=1000)
    _append(store, smt=1200)     # +20% > the 10% tolerance
    results = check_latest(store)
    assert not results[0].ok
    assert any("smt_queries" in f for f in results[0].failures)
    rendered = results[0].render()
    assert "REGRESSION" in rendered and "x1.200" in rendered


def test_gate_catches_join_count_regression(store):
    _append(store, joins=500)
    _append(store, joins=600)
    results = check_latest(store)
    assert not results[0].ok
    assert any("lift_joins" in f for f in results[0].failures)


def test_gate_requires_exact_determinism_under_same_fingerprint(store):
    _append(store, instructions=5000)
    _append(store, instructions=5001)
    results = check_latest(store)
    assert not results[0].ok
    assert any("identical semantics fingerprint" in f
               for f in results[0].failures)
    # A fingerprint change legitimizes the difference.
    _append(store, instructions=6000, smt=2500, fingerprint="e" * 16)
    assert check_latest(store)[0].ok


def test_single_run_passes_vacuously(store):
    _append(store)
    results = check_latest(store)
    assert results[0].ok
    assert "(no baseline)" in results[0].render()


def test_gate_thresholds_are_tunable(store):
    _append(store, smt=1000)
    _append(store, smt=1200)
    relaxed = Thresholds(max_smt_ratio=1.25)
    assert check_latest(store, thresholds=relaxed)[0].ok


def test_check_regression_without_timing_sidecar(store):
    record = _append(store)
    baseline = rolling_baseline([], key="k", fingerprint="f" * 16)
    result = check_regression(record, None, baseline)
    assert result.ok   # nothing to compare against, nothing to fail


def test_missing_key_is_a_failure(store):
    results = check_latest(store, key="bench/scale-9/jobs-1/deadbeef")
    assert len(results) == 1 and not results[0].ok
    assert "no history records" in results[0].failures[0]


def test_render_history_lists_runs(store):
    assert render_history([]) == "history: no recorded runs"
    _append(store)
    text = render_history(store.runs())
    assert "instrs/s" in text and "bench/scale-1" in text


# -- the eval CLI verb -----------------------------------------------------

def test_history_verb_list_and_check(store, capsys):
    from repro.eval.__main__ import main

    for _ in range(2):
        _append(store)
    root = str(store.root)
    assert main(["history", "--history-dir", root]) == 0
    assert "bench/scale-1" in capsys.readouterr().out
    assert main(["history", "--history-dir", root, "--check"]) == 0
    assert "PASS" in capsys.readouterr().out

    _append(store, smt=5000)   # injected query-count regression
    assert main(["history", "--history-dir", root, "--check"]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "regression gate failed" in captured.err


def test_history_verb_empty_store_fails_check(tmp_path, capsys):
    from repro.eval.__main__ import main

    assert main(["history", "--history-dir", str(tmp_path / "none"),
                 "--check"]) == 1
    assert "nothing to check" in capsys.readouterr().err


# -- bench plumbing --------------------------------------------------------

def test_record_history_folds_a_bench_result(tmp_path):
    from repro.perf.bench import record_history

    current = {
        "scale": 1, "jobs": 1,
        "timeout_seconds": 10.0, "max_states": 10_000,
        "instructions": 500, "functions": 5,
        "lift_seconds": 2.5, "build_seconds": 0.5,
        "instrs_per_second": 200.0,
        "counters": {"solver_hits": 90, "solver_misses": 10,
                     "lift_joins": 42},
    }
    record = record_history(current, tmp_path / "history")
    assert record["instructions"] == 500
    assert record["smt_queries"] == 100   # hits + misses
    assert record["lift_joins"] == 42
    assert set(CANONICAL_METRICS) <= set(record)
    store = HistoryStore(tmp_path / "history")
    assert len(store.records()) == 1
    timing = store.timings()[record["id"]]
    assert timing["instrs_per_second"] == 200.0
