"""Property tests for the serve daemon's priority job queue.

The queue's contract (docstring of :mod:`repro.serve.queue`) has four
clauses, and each gets a hypothesis property here:

* priority ordering — higher priority pops first;
* FIFO within a priority class — ties break by push order;
* cancellation is exact — exactly the target disappears;
* conservation — under any interleaving of push/pop/cancel, every unit
  is popped exactly once or cancelled exactly once, never lost, never
  duplicated.

Plus the retry backoff curve (:func:`repro.serve.jobs.backoff_delay`),
which the crash-retry scheduler builds on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.jobs import backoff_delay
from repro.serve.queue import PriorityJobQueue

#: (priority, payload-tag) pairs; ids are assigned by insertion index.
_pushes = st.lists(st.integers(min_value=-100, max_value=100), max_size=60)


def _fill(priorities):
    queue = PriorityJobQueue()
    for index, priority in enumerate(priorities):
        queue.push(f"u-{index}", {"n": index}, priority)
    return queue


def _drain(queue):
    out = []
    while True:
        popped = queue.pop()
        if popped is None:
            return out
        out.append(popped[0])


# -- ordering --------------------------------------------------------------

@given(_pushes)
def test_pops_are_sorted_by_priority_then_fifo(priorities):
    queue = _fill(priorities)
    order = _drain(queue)
    keys = [(-priorities[int(unit_id[2:])], int(unit_id[2:]))
            for unit_id in order]
    assert keys == sorted(keys)


@given(st.integers(min_value=2, max_value=40))
def test_equal_priorities_pop_in_push_order(count):
    queue = _fill([7] * count)
    assert _drain(queue) == [f"u-{index}" for index in range(count)]


@given(_pushes)
def test_pending_matches_pop_order_and_is_nondestructive(priorities):
    queue = _fill(priorities)
    preview = list(queue.pending())
    assert list(queue.pending()) == preview  # repeatable
    assert _drain(queue) == preview


# -- cancellation ----------------------------------------------------------

@given(_pushes.filter(bool), st.data())
def test_cancel_removes_exactly_the_target(priorities, data):
    queue = _fill(priorities)
    victim = data.draw(st.integers(min_value=0,
                                   max_value=len(priorities) - 1))
    unit = queue.cancel(f"u-{victim}")
    assert unit == {"n": victim}
    assert f"u-{victim}" not in queue
    survivors = _drain(queue)
    assert f"u-{victim}" not in survivors
    assert sorted(survivors) == sorted(
        f"u-{index}" for index in range(len(priorities)) if index != victim)


def test_cancel_of_absent_id_returns_none():
    queue = _fill([1, 2])
    assert queue.cancel("u-99") is None
    assert len(queue) == 2


def test_cancel_then_pop_skips_the_tombstone():
    queue = _fill([5, 9, 1])  # u-1 is next in line
    queue.cancel("u-1")
    assert queue.pop()[0] == "u-0"


# -- conservation under interleavings --------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"),
                  st.integers(min_value=-100, max_value=100)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=80)),
    ),
    max_size=120,
)


@given(_ops)
@settings(max_examples=200)
def test_no_unit_lost_or_duplicated_under_interleavings(ops):
    queue = PriorityJobQueue()
    pushed, popped, cancelled = set(), [], set()
    next_id = 0
    for op, arg in ops:
        if op == "push":
            unit_id = f"u-{next_id}"
            next_id += 1
            queue.push(unit_id, {"id": unit_id}, arg)
            pushed.add(unit_id)
        elif op == "pop":
            result = queue.pop()
            if result is not None:
                popped.append(result[0])
        else:
            unit = queue.cancel(f"u-{arg}")
            if unit is not None:
                cancelled.add(f"u-{arg}")
    popped.extend(_drain(queue))
    assert len(popped) == len(set(popped))          # no duplication
    assert set(popped) | cancelled == pushed        # no loss
    assert set(popped) & cancelled == set()         # exactly one fate


@given(_pushes)
def test_depth_by_priority_accounts_for_every_pending_unit(priorities):
    queue = _fill(priorities)
    depths = queue.depth_by_priority()
    assert sum(depths.values()) == len(queue) == len(priorities)
    for priority, depth in depths.items():
        assert depth == priorities.count(priority)


def test_repushing_a_pending_id_raises():
    queue = _fill([0])
    with pytest.raises(ValueError, match="already queued"):
        queue.push("u-0", {"n": 0}, 5)


def test_popped_id_can_be_repushed():
    queue = _fill([0])
    queue.pop()
    queue.push("u-0", {"n": 0}, 5)  # retry path re-enqueues the same id
    assert queue.pop() == ("u-0", {"n": 0})


# -- retry backoff ---------------------------------------------------------

@given(st.integers(min_value=1, max_value=30),
       st.floats(min_value=0.01, max_value=2.0,
                 allow_nan=False, allow_infinity=False),
       st.floats(min_value=0.01, max_value=30.0,
                 allow_nan=False, allow_infinity=False))
def test_backoff_is_capped_exponential(attempt, base, cap):
    delay = backoff_delay(attempt, base, cap)
    assert delay <= cap
    assert delay <= base * (2.0 ** (attempt - 1))
    if attempt > 1:
        assert delay >= backoff_delay(attempt - 1, base, cap)


def test_backoff_first_attempt_is_the_base():
    assert backoff_delay(1, 0.25, 5.0) == 0.25
    assert backoff_delay(2, 0.25, 5.0) == 0.5
    assert backoff_delay(10, 0.25, 5.0) == 5.0  # capped


def test_backoff_rejects_nonpositive_attempts():
    with pytest.raises(ValueError):
        backoff_delay(0, 0.25, 5.0)
