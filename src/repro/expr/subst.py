"""Substitution over symbolic expressions.

``substitute`` rebuilds an expression bottom-up through the simplifying
constructors, so substitution doubles as re-simplification (substituting a
constant for a variable folds everything it touches).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.expr import simplify as s
from repro.expr.ast import App, Const, Deref, Expr, FlagRef, RegRef, Var
from repro.perf import register_lru


def substitute(expr: Expr, replace: Callable[[Expr], Expr | None]) -> Expr:
    """Return *expr* with every node for which *replace* returns non-None
    swapped for the replacement (applied leaf-first, then once at each
    rebuilt node)."""
    cache: dict[Expr, Expr] = {}

    def walk(node: Expr) -> Expr:
        if node in cache:
            return cache[node]
        replaced = replace(node)
        if replaced is not None:
            cache[node] = replaced
            return replaced
        if isinstance(node, (Const, Var, RegRef, FlagRef)):
            result = node
        elif isinstance(node, Deref):
            new_addr = walk(node.addr)
            rebuilt = node if new_addr is node.addr else Deref(new_addr, node.size)
            replaced = replace(rebuilt)
            result = replaced if replaced is not None else rebuilt
        elif isinstance(node, App):
            new_args = tuple(walk(arg) for arg in node.args)
            rebuilt = _rebuild(node.op, new_args, node.width)
            replaced = replace(rebuilt)
            result = replaced if replaced is not None else rebuilt
        else:
            raise TypeError(f"unknown expression type: {node!r}")
        cache[node] = result
        return result

    return walk(expr)


def subst_vars(expr: Expr, bindings: dict[str, Expr]) -> Expr:
    """Substitute variables by name.

    Memoized: hash-consed nodes make ``(expr, bindings)`` a cheap cache
    key, and variable substitution (unlike the general callable form of
    :func:`substitute`) is a pure function of that pair.
    """
    return _subst_vars_cached(expr, tuple(sorted(bindings.items())))


@lru_cache(maxsize=1 << 15)
def _subst_vars_cached(expr: Expr, bindings_key: tuple[tuple[str, Expr], ...]) -> Expr:
    bindings = dict(bindings_key)

    def replace(node: Expr) -> Expr | None:
        if isinstance(node, Var) and node.name in bindings:
            replacement = bindings[node.name]
            if replacement.width != node.width:
                replacement = s.low(replacement, node.width) \
                    if replacement.width > node.width else s.zext(replacement, node.width)
            return replacement
        return None

    return substitute(expr, replace)


register_lru("subst.vars", _subst_vars_cached)


def _rebuild(op: str, args: tuple[Expr, ...], width: int) -> Expr:
    """Re-apply the simplifying constructor for *op*."""
    binary = {
        "add": s.add, "sub": s.sub, "mul": s.mul, "and": s.and_, "or": s.or_,
        "xor": s.xor, "shl": s.shl, "shr": s.shr, "sar": s.sar,
        "udiv": s.udiv, "sdiv": s.sdiv, "urem": s.urem, "srem": s.srem,
        "eq": s.eq, "ltu": s.ltu, "leu": s.leu, "lts": s.lts, "les": s.les,
    }
    if op in binary and len(args) == 2:
        return binary[op](args[0], args[1], width) if op not in (
            "eq", "ltu", "leu", "lts", "les"
        ) else binary[op](args[0], args[1], max(a.width for a in args))
    if op == "add" and len(args) > 2:
        result = args[0]
        for arg in args[1:]:
            result = s.add(result, arg, width)
        return result
    if op == "not":
        return s.not_(args[0], width)
    if op == "neg":
        return s.neg(args[0], width)
    if op == "zext":
        return s.zext(args[0], width)
    if op == "sext":
        return s.sext(args[0], width)
    if op == "low":
        return s.low(args[0], width)
    if op == "ite":
        return s.ite(args[0], args[1], args[2], width)
    if op == "bool_not":
        return s.bool_not(args[0])
    if op == "bool_and":
        return s.bool_and(args[0], args[1])
    if op == "bool_or":
        return s.bool_or(args[0], args[1])
    return App(op, args, width)
