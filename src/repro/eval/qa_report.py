"""``python -m repro.eval qa`` — the mutation-campaign report.

Runs a :mod:`repro.qa.campaign` and renders the kill-rate rollup as the
text report plus a canonical JSON payload.  When any trial misses its
expectation (a curated fault survives, or a control/survivor trial trips
a detector) the full baseline/observed signature pair is written per
missed trial under the witness directory — the artifact CI uploads so a
red ``qa-smoke`` job is debuggable without rerunning the campaign.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.qa.campaign import CampaignReport, run_campaign


def render_qa_report(report: CampaignReport) -> str:
    lines = [
        f"QA mutation campaign: {report.campaign} "
        f"(seed {report.seed}, {len(report.results)} trials)",
        "",
        f"{'fault class':<22} {'trials':>6} {'killed':>6} {'rate':>6}",
        "-" * 44,
    ]
    for cls, row in report.by_class().items():
        rate = row["killed"] / row["trials"] if row["trials"] else 0.0
        lines.append(f"{cls:<22} {row['trials']:>6} {row['killed']:>6} "
                     f"{rate:>5.0%}")
    lines += [
        "-" * 44,
        f"curated kill rate: {report.kill_rate:.0%} "
        f"({report.curated_killed}/{len(report.trials_of('killed'))})",
        f"false positives:   {len(report.false_positives)}",
        f"gate:              {'OK' if report.gate_ok else 'FAILED'}",
    ]
    for result in report.missed:
        lines.append(f"  MISSED  {result.name} (expected kill, all "
                     "detectors agreed with baseline)")
    for result in report.false_positives:
        lines.append(f"  FALSE+  {result.name} (killed by "
                     f"{result.killed_by}: {result.detail})")
    killed = [r for r in report.results if r.killed and r.expect == "killed"]
    if killed:
        lines += ["", "curated kills:"]
        for result in killed:
            lines.append(f"  {result.name:<44} -> {result.killed_by}")
    return "\n".join(lines)


def write_witnesses(report: CampaignReport, directory: str) -> list[str]:
    """Dump baseline/observed signatures of every missed expectation."""
    paths = []
    bad = [r for r in report.results if not r.ok and r.witness is not None]
    if not bad:
        return paths
    os.makedirs(directory, exist_ok=True)
    for result in bad:
        safe = result.name.replace("/", "_")
        path = os.path.join(directory, f"{safe}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(result.witness, fh, sort_keys=True, indent=1)
        paths.append(path)
    return paths


def generate_qa_report(campaign: str = "quick", seed: int = 2022,
                       jobs: int = 1,
                       witness_dir: str | None = None,
                       engine: str = "tau",
                       ) -> tuple[dict[str, Any], str]:
    report = run_campaign(campaign, seed=seed, jobs=jobs, engine=engine)
    payload = report.canonical()
    text = render_qa_report(report)
    if witness_dir is not None and not report.gate_ok:
        paths = write_witnesses(report, witness_dir)
        if paths:
            text += "\n\nwitnesses written:\n" + \
                "\n".join(f"  {p}" for p in paths)
    return payload, text
