"""Step 2: Isabelle/HOL export and independent Hoare-triple validation."""

from repro.export.checker import CheckReport, TripleCheck, check_triples
from repro.export.isabelle import export_theory, export_theory_file
from repro.export.terms import to_isabelle
from repro.export.theory_base import base_theory, export_session, session_root

__all__ = [
    "CheckReport", "TripleCheck", "check_triples",
    "export_theory", "export_theory_file", "to_isabelle",
    "base_theory", "export_session", "session_root",
]
