#!/usr/bin/env python3
"""The Section 2 example: finding "weird" control-flow edges.

A jump-table dispatcher stores its target pointer to ``*rdi`` and an
immediate to ``*rsi``.  If the two pointers alias, the immediate — which
happens to be the address of the *middle* of the first instruction —
overwrites the target, and the byte there (0xc3) executes as ``ret``: a
ROP gadget.  A provably overapproximative lift must contain that edge.

Run:  python examples/weird_edges.py
"""

from repro import lift
from repro.elf import BinaryBuilder
from repro.isa import Imm, Mem, abs32, abs64
from repro.machine import CPU


def build_weird_binary():
    builder = BinaryBuilder("weird")
    t = builder.text
    t.label("main")
    t.emit("cmp", "rax", Imm(0xC3, 32))       # 48 3d C3 00 00 00
    t.emit("ja", "out")
    t.emit("movabs", "rcx", abs64("table"))
    t.emit("mov", "rax", Mem(64, base="rcx", index="rax", scale=8))
    t.emit("mov", Mem(64, base="rdi"), "rax")                 # *rdi = a_jt
    t.emit("mov", Mem(64, base="rsi"), abs32("main", addend=2))  # *rsi = main+2
    t.emit("jmp", Mem(64, base="rdi"))
    t.label("out")
    t.emit("ret")
    t.label("case0")
    t.emit("mov", "eax", Imm(10, 32))
    t.emit("ret")
    t.label("case1")
    t.emit("mov", "eax", Imm(11, 32))
    t.emit("ret")
    rod = builder.rodata
    rod.label("table")
    for index in range(0xC4):
        rod.quad(abs64("case0" if index % 2 == 0 else "case1"))
    return builder.build(entry="main")


def main() -> None:
    binary = build_weird_binary()
    weird_addr = binary.entry + 2
    print(f"bytes at entry: {binary.read(binary.entry, 6).hex()}")
    print(f"the byte at {weird_addr:#x} decodes as: "
          f"{binary.fetch(weird_addr).mnemonic}  <- hidden ret (0xc3)\n")

    result = lift(binary, max_targets=4096)
    print(f"lift: {result.summary()}")

    jmp_addr = next(a for a, i in result.instructions.items()
                    if i.mnemonic == "jmp" and i.operands)
    targets = sorted(result.graph.control_flow_targets(jmp_addr))
    print(f"\nindirect jmp at {jmp_addr:#x} has {len(targets)} targets:")
    for target in targets:
        label = result.instructions[target].mnemonic \
            if target in result.instructions else "?"
        weird = "   <-- WEIRD EDGE (mid-instruction ROP gadget)" \
            if target == weird_addr else ""
        print(f"  {target:#x}: {label}{weird}")

    print("\nconcrete witness of the weird path (rdi == rsi):")
    cpu = CPU(binary)
    cpu.regs["rax"] = 2
    cpu.regs["rdi"] = cpu.regs["rsi"] = 0x500000   # aliasing!
    cpu.run(max_steps=100)
    print(f"  executed addresses: {[hex(a) for a in cpu.trace]}")
    print(f"  the ROP ret at {weird_addr:#x} really ran: "
          f"{weird_addr in cpu.trace}")

    print("\nconcrete witness of the normal path (rdi != rsi):")
    cpu = CPU(binary)
    cpu.regs["rax"] = 2
    cpu.regs["rdi"], cpu.regs["rsi"] = 0x500000, 0x600000
    cpu.run(max_steps=100)
    print(f"  exit code {cpu.exit_code} (case0)")

    executed = set(cpu.trace)
    print(f"\noverapproximation check: every executed address lifted: "
          f"{executed <= set(result.instructions)}")


if __name__ == "__main__":
    main()
