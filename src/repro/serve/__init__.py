"""Lifting as a service: the ``python -m repro serve`` daemon.

The daemon accepts lift/verify jobs over a Unix socket speaking the
schema-validated JSONL dialect of :mod:`repro.serve.protocol`, executes
them on a persistent worker pool (:mod:`repro.serve.pool`) under a
priority queue (:mod:`repro.serve.queue`), retries crashed workers with
capped exponential backoff, answers duplicate submissions from the
content-addressed lift store, and drains gracefully on ``SIGTERM``.
See :mod:`repro.serve.server` for the architecture notes and
``docs/INTERNALS.md`` §17 for the prose version.
"""

from repro.serve.client import JobError, ServeClient, ServeError
from repro.serve.jobs import Job, Unit, backoff_delay
from repro.serve.pool import WorkerPool, execute_payload
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    validate_job_spec,
    validate_request,
    validate_response,
)
from repro.serve.queue import PriorityJobQueue
from repro.serve.server import Server, ServerConfig

__all__ = [
    "JobError", "ServeClient", "ServeError",
    "Job", "Unit", "backoff_delay",
    "WorkerPool", "execute_payload",
    "MAX_LINE_BYTES", "PROTOCOL_VERSION", "ProtocolError",
    "validate_job_spec", "validate_request", "validate_response",
    "PriorityJobQueue",
    "Server", "ServerConfig",
]
