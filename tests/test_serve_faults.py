"""Fault injection against the serve daemon: crashes, budgets, drains.

The resilience contract under test (docstrings of :mod:`repro.serve.pool`
and :mod:`repro.serve.server`):

* a worker killed mid-job orphans exactly that job's unit; the unit is
  retried with capped exponential backoff and completes if a later
  attempt survives (``crash_until``), while the daemon keeps serving;
* after ``max_retries`` crashes the job fails with structured
  diagnostics (exit code, attempts) — a structured ``failed``, never a
  hang;
* deterministic in-worker exceptions and budget violations
  (``budget-cpu`` / ``budget-memory``) fail immediately, with no retry;
* a real ``SIGKILL`` from outside (not just the chaos payload's
  ``os._exit``) takes the same retry path;
* drain under load finishes in-flight work and stops.

Chaos payloads (``crash``, ``crash_until``, ``sleep``, ``spin``,
``alloc``) make the faults deterministic: the parent passes the attempt
counter to the worker, so "die twice then succeed" is exact, not timed.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.serve import Server, ServerConfig, ServeClient, ServeError
from repro.serve.pool import execute_payload

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture()
def server(tmp_path):
    config = ServerConfig(socket_path=str(tmp_path / "s.sock"), workers=1,
                          cache=False, allow_chaos=True,
                          max_retries=3, retry_base=0.02, retry_cap=0.1)
    srv = Server(config)
    srv.start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    with ServeClient(server.config.socket_path, timeout=120.0) as c:
        yield c


def _submit_chaos(client, action, **fields):
    return client.submit({"kind": "chaos", "action": action, **fields})


# -- crash / retry ---------------------------------------------------------

def test_killed_workers_job_completes_via_retry(client):
    submitted = _submit_chaos(client, "crash_until", attempts=2)
    status = client.wait(submitted["job_id"], timeout=60)
    assert status["state"] == "done"
    result = client.result(submitted["job_id"])["result"]
    assert result["chaos"]["chaos"] == "survived"
    assert result["chaos"]["attempt"] == 3  # died on attempts 1 and 2


def test_retries_emit_backoff_heartbeats(server, client):
    submitted = _submit_chaos(client, "crash_until", attempts=2)
    client.wait(submitted["job_id"], timeout=60)
    events = []
    with ServeClient(server.config.socket_path, timeout=60.0) as watcher:
        watcher.watch(submitted["job_id"], on_event=events.append)
    kinds = [event["kind"] for event in events]
    assert kinds[0] == "job_queued"
    assert kinds[-1] == "job_finished"
    retries = [event for event in events if event["kind"] == "job_retried"]
    assert [event["attempt"] for event in retries] == [1, 2]
    delays = [event["delay"] for event in retries]
    assert delays == [0.02, 0.04]  # base * 2**(attempt-1), under the cap
    # seq is gap-free from 0 even across retries.
    assert [event["seq"] for event in events] == list(range(len(events)))


def test_crashes_past_max_retries_fail_with_diagnostics(client):
    submitted = _submit_chaos(client, "crash")  # dies on every attempt
    status = client.wait(submitted["job_id"], timeout=60)
    assert status["state"] == "failed"
    diagnostics = status["diagnostics"]
    assert len(diagnostics) == 1
    assert diagnostics[0]["code"] == "worker-crashed"
    assert diagnostics[0]["attempts"] == 4  # first try + max_retries
    assert "retries exhausted" in diagnostics[0]["message"]
    assert isinstance(diagnostics[0]["exitcode"], int)


def test_failed_job_result_op_reports_not_done_never_hangs(client):
    from repro.serve.client import JobError

    submitted = _submit_chaos(client, "crash")
    client.wait(submitted["job_id"], timeout=60)
    # The job is terminal; result returns the (None) payload rather than
    # blocking — the "structured failed, never a hang" clause.
    response = client.result(submitted["job_id"])
    assert response["job"]["state"] == "failed"
    assert response["result"] is None
    # An unfinished job is a structured not-done error, not a block.
    blocker = _submit_chaos(client, "sleep", seconds=5.0)
    with pytest.raises(JobError) as excinfo:
        client.result(blocker["job_id"])
    assert excinfo.value.code == "not-done"
    client.cancel(blocker["job_id"])


def test_daemon_survives_crashes_and_keeps_serving(client):
    crashed = _submit_chaos(client, "crash")
    assert client.wait(crashed["job_id"], timeout=60)["state"] == "failed"
    healthy = _submit_chaos(client, "sleep", seconds=0.01)
    assert client.wait(healthy["job_id"], timeout=60)["state"] == "done"
    stats = client.stats()
    assert stats["workers"]["respawns"] >= 4
    assert stats["jobs"]["by_state"] == {"done": 1, "failed": 1}


def test_external_sigkill_takes_the_retry_path(server, client):
    """A real SIGKILL from outside the worker (not os._exit inside it)."""
    submitted = _submit_chaos(client, "sleep", seconds=30.0)
    deadline = time.monotonic() + 30
    victim = None
    while time.monotonic() < deadline and victim is None:
        with server._lock:
            for worker in server._pool.busy_workers():
                victim = worker.pid
        time.sleep(0.02)
    assert victim is not None, "sleep unit never reached a worker"
    os.kill(victim, signal.SIGKILL)
    # The retried attempt sleeps 30s again, so don't wait for completion —
    # assert the retry heartbeat appeared and the respawn happened.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        status = client.status(submitted["job_id"])
        with server._lock:
            job = server._jobs[submitted["job_id"]]
            retried = any(event["kind"] == "job_retried"
                          for event in job.events)
        if retried:
            break
        time.sleep(0.05)
    assert retried
    assert status["state"] in ("queued", "running")
    assert client.stats()["workers"]["respawns"] >= 1
    client.cancel(submitted["job_id"])


# -- budgets ---------------------------------------------------------------

def test_memory_budget_fails_without_retry(client):
    submitted = _submit_chaos(client, "alloc", bytes=1 << 30,
                              memory_bytes=256 << 20)
    status = client.wait(submitted["job_id"], timeout=60)
    assert status["state"] == "failed"
    assert status["diagnostics"][0]["code"] == "budget-memory"
    assert status["diagnostics"][0]["attempts"] == 1  # budgets never retry


def test_cpu_budget_fails_without_retry(client):
    submitted = _submit_chaos(client, "spin", seconds=60.0, cpu_seconds=1.0)
    status = client.wait(submitted["job_id"], timeout=120)
    assert status["state"] == "failed"
    assert status["diagnostics"][0]["code"] == "budget-cpu"
    assert status["diagnostics"][0]["attempts"] == 1


def test_deterministic_exception_is_not_retried():
    # Below the daemon: the worker-side executor turns an arbitrary
    # exception into a structured error instead of dying.
    result = execute_payload({"type": "chaos", "action": "bogus"}, 1)
    assert result["status"] == "error"
    assert result["error"]["code"] == "exception"
    assert "bogus" in result["error"]["message"]
    assert "traceback" in result["error"]


def test_unknown_payload_type_is_a_structured_error():
    result = execute_payload({"type": "warp-drive"}, 1)
    assert result["status"] == "error"
    assert result["error"]["code"] == "exception"


# -- drain under load ------------------------------------------------------

def test_drain_finishes_inflight_work_then_stops(tmp_path):
    config = ServerConfig(socket_path=str(tmp_path / "d.sock"), workers=2,
                          cache=False, allow_chaos=True, retry_base=0.02)
    server = Server(config)
    server.start()
    try:
        with ServeClient(config.socket_path, timeout=60.0) as client:
            jobs = [_submit_chaos(client, "sleep", seconds=0.3)
                    for _ in range(3)]
            response = client.drain()
            assert response["state"] == "draining"
            from repro.serve.client import JobError

            with pytest.raises(JobError) as excinfo:
                _submit_chaos(client, "sleep", seconds=0.1)
            assert excinfo.value.code == "draining"
            # In-flight jobs all finish before the daemon exits.  The
            # daemon may close our socket between the last job finishing
            # and our next poll; fall back to in-process state then.
            try:
                final = [client.wait(job["job_id"], timeout=60)["state"]
                         for job in jobs]
            except ServeError:
                final = None
        assert server.wait(timeout=60) == 0
        if final is None:
            final = [server._jobs[job["job_id"]].state for job in jobs]
        assert final == ["done"] * 3
        assert not os.path.exists(config.socket_path)
    finally:
        server.close()


def test_drain_grace_forces_a_stuck_drain(tmp_path):
    config = ServerConfig(socket_path=str(tmp_path / "g.sock"), workers=1,
                          cache=False, allow_chaos=True, drain_grace=0.5)
    server = Server(config)
    server.start()
    try:
        with ServeClient(config.socket_path, timeout=60.0) as client:
            stuck = _submit_chaos(client, "sleep", seconds=120.0)
            client.drain()
        assert server.wait(timeout=60) == 1  # forced: exit code says so
        job = server._jobs[stuck["job_id"]]
        assert job.state == "failed"
        assert job.diagnostics[0]["code"] == "drain-timeout"
    finally:
        server.close()
