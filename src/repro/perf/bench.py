"""The benchmark harness behind ``python -m repro.eval bench``.

Measures end-to-end corpus lifting throughput (instructions per second of
*lift* time, corpus construction excluded), reports the hot-path counters
and memo-cache statistics, and writes the results next to the checked-in
pre-optimization baseline so speedups are tracked in-repo.

The ``check_determinism`` mode runs the same corpus serially and with a
worker pool and asserts the two reports agree in canonical (timing-free)
form — the guarantee the parallel runner is built around.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.obs.history import gc_stats, peak_rss_kb
from repro.obs.tracer import DEFAULT_SAMPLING
from repro.perf import cache_stats, reset_caches
from repro.perf.counters import counters, hit_rate

#: The repo's checked-in measurement directory.
BENCHMARKS_DIR = Path(__file__).resolve().parents[3] / "benchmarks"

#: Named comparison points, one generic registry instead of a hardcoded
#: loader per PR: ``pr2`` = pre-optimization (the totals-metric seed),
#: ``pr5`` = pre-incremental-lifting, ``pr6`` = pre-pointer-summaries.
#: New comparison points are one dict entry; rolling comparisons live in
#: the run history (:mod:`repro.obs.history`), not here.
BASELINES: dict[str, Path] = {
    "pr2": BENCHMARKS_DIR / "baseline_pr2.json",
    "pr5": BENCHMARKS_DIR / "baseline_pr5.json",
    "pr6": BENCHMARKS_DIR / "baseline_pr6.json",
}


def _instruction_totals(report) -> int:
    totals_fn = report.totals("function")
    totals_bin = report.totals("binary")
    return totals_fn.instructions + totals_bin.instructions


def run_bench(scale: int = 3, jobs: int = 1, timeout_seconds: float = 10.0,
              max_states: int = 10_000,
              check_determinism: bool = False) -> dict:
    """Lift the scale-*scale* corpus once and return the measurement dict.

    Caches and counters are reset first so the reported hit rates describe
    this run alone.  ``jobs=1`` is the default: a single process keeps the
    process-global counters meaningful (worker deltas are merged into the
    report either way, but cold per-worker caches dilute the rates).
    """
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    reset_caches()

    build_start = time.perf_counter()
    corpus = build_corpus(scale)
    build_seconds = time.perf_counter() - build_start

    lift_start = time.perf_counter()
    # cache=False: the throughput bench measures the lifter, not the
    # persistent store — an ambient REPRO_CACHE must not skew it.
    report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                        max_states=max_states, jobs=jobs, cache=False)
    lift_seconds = time.perf_counter() - lift_start

    instructions = _instruction_totals(report)
    stats = cache_stats()
    result = {
        "scale": scale,
        "jobs": jobs,
        "timeout_seconds": timeout_seconds,
        "max_states": max_states,
        "functions": sum(1 for _ in report.records),
        "build_seconds": round(build_seconds, 3),
        "lift_seconds": round(lift_seconds, 3),
        "instructions": instructions,
        "instrs_per_second": round(instructions / lift_seconds, 1)
        if lift_seconds else 0.0,
        "counters": dict(report.counters),
        "hit_rates": {
            "interning": round(hit_rate(report.counters.get("intern_hits", 0),
                                        report.counters.get("expr_new", 0)), 4),
            "solver": round(hit_rate(report.counters.get("solver_hits", 0),
                                     report.counters.get("solver_misses", 0)),
                            4),
        },
        "caches": stats,
        "python": platform.python_version(),
        "peak_rss_kb": peak_rss_kb(),
        "gc": gc_stats(),
    }

    if check_determinism:
        result["determinism"] = _check_determinism(corpus, timeout_seconds,
                                                   max_states, jobs, report)
    return result


def _check_determinism(corpus, timeout_seconds: float, max_states: int,
                       jobs: int, first_report) -> dict:
    """Re-lift in the *other* execution mode; compare canonical forms.

    If the measured run was serial, the check run uses a 2-worker pool
    (and vice versa), so the comparison is always serial vs parallel."""
    from repro.eval.runner import run_corpus

    check_jobs = 1 if jobs > 1 else 2
    reset_caches()
    check_report = run_corpus(corpus=corpus,
                              timeout_seconds=timeout_seconds,
                              max_states=max_states, jobs=check_jobs,
                              cache=False)
    first = first_report.canonical_json()
    check = check_report.canonical_json()
    return {"ok": first == check, "check_jobs": check_jobs,
            "first_bytes": len(first), "check_bytes": len(check)}


def trace_overhead(scale: int = 1, timeout_seconds: float = 10.0,
                   max_states: int = 10_000, rounds: int = 2,
                   sampling: int = DEFAULT_SAMPLING) -> dict:
    """Measure the enabled-tracing overhead: corpus lifts with obs off and
    on, interleaved over *rounds* so drift hits both sides.

    ``overhead_ratio`` — the quantity the <=5% acceptance bound is on —
    is the best *paired* round: each round lifts off then on back-to-back
    under near-identical machine conditions, so the per-round on/off
    ratio cancels drift that spans rounds, and the minimum over rounds is
    the least-noise estimate of the intrinsic multiplicative cost (noise
    can only inflate a ratio, exactly as it can only inflate a best-of
    absolute time).  ``round_ratios`` records every round for posterity;
    ``off_seconds``/``on_seconds`` stay the per-side minima."""
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    corpus = build_corpus(scale)
    times: dict[bool, list[float]] = {False: [], True: []}
    instructions = 0
    for _ in range(rounds):
        for enabled in (False, True):
            reset_caches()
            start = time.perf_counter()
            report = run_corpus(corpus=corpus,
                                timeout_seconds=timeout_seconds,
                                max_states=max_states, jobs=1,
                                obs=enabled, obs_sampling=sampling,
                                cache=False)
            times[enabled].append(time.perf_counter() - start)
            instructions = _instruction_totals(report)
    off, on = min(times[False]), min(times[True])
    round_ratios = [round(on_i / off_i, 4)
                    for off_i, on_i in zip(times[False], times[True]) if off_i]
    return {
        "scale": scale,
        "rounds": rounds,
        "sampling": sampling,
        "instructions": instructions,
        "off_seconds": round(off, 3),
        "on_seconds": round(on, 3),
        "off_instrs_per_second": round(instructions / off, 1) if off else 0.0,
        "on_instrs_per_second": round(instructions / on, 1) if on else 0.0,
        "round_ratios": round_ratios,
        "overhead_ratio": min(round_ratios) if round_ratios else 0.0,
    }


def run_cache_bench(scale: int = 3, timeout_seconds: float = 10.0,
                    max_states: int = 10_000,
                    cache_dir: str | None = None) -> dict:
    """Cold-vs-warm lift of the same corpus through the persistent store.

    The cold pass lifts into an (empty) store; the warm pass re-runs the
    identical corpus and should be served almost entirely from disk.  Both
    passes go through ``run_corpus(cache=True)``, so the comparison also
    exercises the canonical-report identity the store guarantees.  A
    third, 2-worker warm pass checks the identity holds across a process
    pool.  Uses a private temp directory unless *cache_dir* is given.
    """
    import tempfile

    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    corpus = build_corpus(scale)

    def phase(jobs: int, directory: str) -> tuple[dict, str]:
        reset_caches()
        counters.reset()
        start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=jobs,
                            cache=True, cache_dir=directory)
        seconds = time.perf_counter() - start
        instructions = _instruction_totals(report)
        measurement = {
            "jobs": jobs,
            "lift_seconds": round(seconds, 3),
            "instructions": instructions,
            "instrs_per_second": round(instructions / seconds, 1)
            if seconds else 0.0,
            "cache_hits": report.counters.get("cache_lift_hits", 0),
            "cache_misses": report.counters.get("cache_lift_misses", 0),
            "cache_stores": report.counters.get("cache_lift_stores", 0),
        }
        return measurement, report.canonical_json()

    with tempfile.TemporaryDirectory() as tmp:
        directory = cache_dir or tmp
        cold, cold_canonical = phase(1, directory)
        warm, warm_canonical = phase(1, directory)
        warm2, warm2_canonical = phase(2, directory)

    cold_rate = cold["instrs_per_second"]
    warm_rate = warm["instrs_per_second"]
    return {
        "scale": scale,
        "cold": cold,
        "warm": warm,
        "warm_jobs2": warm2,
        "warm_speedup": round(warm_rate / cold_rate, 2) if cold_rate else 0.0,
        "reports_identical": cold_canonical == warm_canonical,
        "reports_identical_jobs2": cold_canonical == warm2_canonical,
    }


def run_schedule_bench(scale: int = 1, timeout_seconds: float = 10.0,
                       max_states: int = 10_000) -> dict:
    """Address-order vs SCC-order A/B over one corpus.

    Both orders must reach the same *verdict* on every corpus entry —
    ``verdicts_identical`` compares per-record outcomes — while the
    loop-aware order should need fewer productive joins (``lift_joins``)
    to get there.  Annotation counts are deliberately excluded: on
    rejected or widened lifts they describe the order-dependent partial
    remainder, not the verdict (docs/INTERNALS.md §6).
    """
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    corpus = build_corpus(scale)
    sides = {}
    verdicts = {}
    for mode in ("address", "scc"):
        reset_caches()
        counters.reset()
        start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=1,
                            cache=False, schedule=mode)
        seconds = time.perf_counter() - start
        instructions = _instruction_totals(report)
        sides[mode] = {
            "lift_seconds": round(seconds, 3),
            "instructions": instructions,
            "instrs_per_second": round(instructions / seconds, 1)
            if seconds else 0.0,
            "lift_joins": report.counters.get("lift_joins", 0),
        }
        verdicts[mode] = {
            (record.kind, record.directory, record.name): record.outcome
            for record in report.records
        }

    address_joins = sides["address"]["lift_joins"]
    scc_joins = sides["scc"]["lift_joins"]
    return {
        "scale": scale,
        "address": sides["address"],
        "scc": sides["scc"],
        "join_reduction": round(1 - scc_joins / address_joins, 4)
        if address_joins else 0.0,
        "verdicts_identical": verdicts["address"] == verdicts["scc"],
    }


def run_summaries_bench(scale: int = 3, timeout_seconds: float = 10.0,
                        max_states: int = 10_000) -> dict:
    """Pointer call-site summaries off vs on: the feedback A/B.

    The "off" side is one cold context-free corpus lift.  The "on" side is
    the two-phase ``pointer_summaries=True`` lift of the same corpus; its
    per-phase accounting comes from :func:`phase2_counters`, because the
    two-phase total would double-count the context-free phase the refined
    lift is derived from (the phase-2 numbers are therefore the *marginal*
    cost/benefit of re-lifting with summaries — the honest comparison
    against the off side, which is exactly such a lift without them).
    Caches are reset between sides so neither inherits the other's SMT
    verdicts or interning tables.

    The corpus A/B proves the refinement is *safe* at scale; the crafted
    :mod:`repro.corpus.feedback` workloads (lifted off/on alongside it)
    concentrate the global-state-across-calls pattern the refinement
    *targets*, which minicc codegen rarely emits — the headline join/query
    reductions are computed over the combined totals.

    Hard guarantees checked here (and asserted by the CI smoke job):

    * every corpus and workload verdict is identical on both sides;
    * no record gains unsoundness annotations under the refinement.
    """
    from repro.corpus import build_corpus
    from repro.corpus.feedback import build_feedback_workloads
    from repro.eval.runner import run_corpus
    from repro.hoare import lift
    from repro.analysis.pointer.feedback import (
        phase2_counters,
        reset_phase_counters,
    )

    corpus = build_corpus(scale)

    def smt_queries(cnt: dict) -> int:
        return cnt.get("solver_hits", 0) + cnt.get("solver_misses", 0)

    def side(pointer_summaries: bool) -> tuple[dict, dict, dict]:
        reset_caches()
        reset_phase_counters()
        start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=1, cache=False,
                            pointer_summaries=pointer_summaries)
        seconds = time.perf_counter() - start
        instructions = _instruction_totals(report)
        cnt = phase2_counters() if pointer_summaries else dict(report.counters)
        measurement = {
            "lift_seconds": round(seconds, 3),
            "instructions": instructions,
            "instrs_per_second": round(instructions / seconds, 1)
            if seconds else 0.0,
            "lift_joins": cnt.get("lift_joins", 0),
            "smt_queries": smt_queries(cnt),
            "pointer_summary_hits": cnt.get("pointer_summary_hits", 0),
            "pointer_refined_havocs": cnt.get("pointer_refined_havocs", 0),
            "pointer_top_summaries": cnt.get("pointer_top_summaries", 0),
        }
        verdicts = {
            (record.kind, record.directory, record.name): record.outcome
            for record in report.records
        }
        annotations = {
            (record.kind, record.directory, record.name):
                sum(record.annotations.values())
            for record in report.records
        }
        return measurement, verdicts, annotations

    off, off_verdicts, off_annotations = side(False)
    on, on_verdicts, on_annotations = side(True)

    workloads: dict[str, dict] = {}
    workloads_ok = True
    for name, binary in build_feedback_workloads():
        rows = {}
        for enabled in (False, True):
            reset_caches()
            reset_phase_counters()
            before = counters.snapshot()
            result = lift(binary, timeout_seconds=timeout_seconds,
                          max_states=max_states, cache=False,
                          pointer_summaries=enabled)
            cnt = (phase2_counters() if enabled
                   else counters.delta(before, counters.snapshot()))
            rows["on" if enabled else "off"] = {
                "verified": result.verified,
                "lift_joins": cnt.get("lift_joins", 0),
                "smt_queries": smt_queries(cnt),
                "pointer_refined_havocs": cnt.get("pointer_refined_havocs", 0),
            }
        workloads[name] = rows
        workloads_ok &= rows["off"]["verified"] == rows["on"]["verified"]

    def combined(side_name: str, metric: str, base: dict) -> int:
        return base[metric] + sum(rows[side_name][metric]
                                  for rows in workloads.values())

    off_joins = combined("off", "lift_joins", off)
    on_joins = combined("on", "lift_joins", on)
    off_smt = combined("off", "smt_queries", off)
    on_smt = combined("on", "smt_queries", on)
    return {
        "scale": scale,
        "off": off,
        "on": on,
        "workloads": workloads,
        "combined": {
            "off_lift_joins": off_joins, "on_lift_joins": on_joins,
            "off_smt_queries": off_smt, "on_smt_queries": on_smt,
        },
        "join_reduction": round(1 - on_joins / off_joins, 4)
        if off_joins else 0.0,
        "smt_query_reduction": round(1 - on_smt / off_smt, 4)
        if off_smt else 0.0,
        "verdicts_identical": off_verdicts == on_verdicts and workloads_ok,
        "annotations_bounded": all(
            on_annotations.get(key, 0) <= count
            for key, count in off_annotations.items()
        ) and set(on_annotations) == set(off_annotations),
    }


def run_engine_bench(scale: int = 3, timeout_seconds: float = 10.0,
                     max_states: int = 10_000, rounds: int = 2,
                     identity_scale: int | None = None) -> dict:
    """τ vs the micro-op engine: the ``--engine-ab`` measurement.

    Vocabulary follows the PR-5 store bench: a **cold-path** run is one
    where lifting actually executes (persistent store disabled) — the
    regime the uop engine targets — as opposed to the store's warm path,
    which skips lifting entirely.  Per interleaved round, each engine
    lifts the corpus twice with obs phase attribution on:

    * the **first** pass starts from fully reset caches (satellite: the
      uop compile table is in the ``reset_caches`` registry, so no
      compile-table warmth leaks across engine rounds — asserted below);
    * the **repeat** pass re-lifts the same corpus in-process, the
      serve-daemon / CI re-lift regime where the engine's content-
      addressed layers (compile table, transfer memo, ins memo) pay off.

    The headline ``cold_path_speedup`` is the *transfer-path* throughput
    ratio on the repeat pass, best paired round: instructions per second
    of engine self-time — ``transfer`` for τ, ``transfer + uop.compile +
    uop.exec`` for uop (the two uop phases nest inside ``transfer``).
    Whole-lift rates for every pass are recorded alongside so the
    (join-dominated) end-to-end picture stays visible; first-pass ratios
    are recorded as ``first_visit_speedup``.

    Byte identity is checked on obs-free runs (engines add their own
    phase names to the obs rollup, so the obs canonical form is engine-
    specific by design): τ vs uop serial, and uop serial vs a 2-worker
    pool, all at *identity_scale* (default: *scale*).
    """
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus
    from repro.obs.profile import profile_rollup
    from repro.uop import compile as uop_compile  # noqa: F401 (registers cache)

    corpus = build_corpus(scale)

    def engine_path_seconds(rollup: dict, engine: str) -> float:
        phases = rollup["phases"]
        names = ("transfer",) if engine == "tau" else \
            ("transfer", "uop.compile", "uop.exec")
        return sum(phases.get(name, {}).get("self_seconds", 0.0)
                   for name in names)

    def one_pass(engine: str) -> dict:
        start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=1, obs=True,
                            cache=False, engine=engine)
        seconds = time.perf_counter() - start
        lift_wall = sum(record.seconds for record in report.records)
        rollup = profile_rollup(report.obs, wall_seconds=lift_wall)
        instructions = _instruction_totals(report)
        path_seconds = engine_path_seconds(rollup, engine)
        return {
            "lift_seconds": round(seconds, 3),
            "instructions": instructions,
            "functions": len(report.records),
            "instrs_per_second": round(instructions / seconds, 1)
            if seconds else 0.0,
            "transfer_path_seconds": round(path_seconds, 3),
            "transfer_path_instrs_per_second":
                round(instructions / path_seconds, 1) if path_seconds else 0.0,
            "coverage": rollup.get("coverage", 0.0),
        }

    round_results = []
    compile_cold_each_round = True
    for _ in range(rounds):
        sides = {}
        for engine in ("tau", "uop"):
            reset_caches()
            counters.reset()
            first = one_pass(engine)
            repeat = one_pass(engine)
            side = {"first": first, "repeat": repeat}
            if engine == "uop":
                stats = cache_stats()
                side["caches"] = {name: stats[name] for name in
                                  ("uop.compile", "uop.step", "uop.ins")
                                  if name in stats}
                # reset_caches cleared the compile table at round start:
                # the first pass must have compiled (missed) its forms.
                compile_cold_each_round &= (
                    side["caches"]["uop.compile"]["misses"] > 0)
            sides[engine] = side
        round_results.append(sides)

    def ratio(pass_name: str, metric: str) -> tuple[float, list[float]]:
        ratios = []
        for sides in round_results:
            tau_rate = sides["tau"][pass_name][metric]
            uop_rate = sides["uop"][pass_name][metric]
            if tau_rate:
                ratios.append(round(uop_rate / tau_rate, 2))
        return (max(ratios) if ratios else 0.0), ratios

    cold_path_speedup, cold_path_rounds = ratio(
        "repeat", "transfer_path_instrs_per_second")
    first_visit_speedup, first_visit_rounds = ratio(
        "first", "transfer_path_instrs_per_second")
    whole_lift_speedup, _ = ratio("repeat", "instrs_per_second")

    identity_scale = scale if identity_scale is None else identity_scale
    identity_corpus = (corpus if identity_scale == scale
                       else build_corpus(identity_scale))

    def identity_run(engine: str, jobs: int) -> str:
        reset_caches()
        report = run_corpus(corpus=identity_corpus,
                            timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=jobs,
                            cache=False, engine=engine)
        return report.canonical_json()

    tau_canonical = identity_run("tau", 1)
    uop_canonical = identity_run("uop", 1)
    uop_jobs2_canonical = identity_run("uop", 2)

    return {
        "scale": scale,
        "rounds": rounds,
        "sides": round_results,
        "cold_path_speedup": cold_path_speedup,
        "cold_path_round_ratios": cold_path_rounds,
        "first_visit_speedup": first_visit_speedup,
        "first_visit_round_ratios": first_visit_rounds,
        "whole_lift_repeat_speedup": whole_lift_speedup,
        "compile_cold_each_round": compile_cold_each_round,
        "identity_scale": identity_scale,
        "reports_identical": tau_canonical == uop_canonical,
        "reports_identical_jobs2": uop_canonical == uop_jobs2_canonical,
    }


def run_serve_bench(scale: int = 1, workers: int = 2,
                    timeout_seconds: float = 10.0,
                    max_states: int = 10_000) -> dict:
    """Direct ``run_corpus`` vs the same corpus through the serve daemon.

    Starts an in-process :class:`repro.serve.server.Server` (real socket,
    real worker pool), submits one corpus job, and compares its canonical
    report byte-for-byte against a direct serial :func:`run_corpus` of the
    same corpus — the server path must be a pure transport around the same
    merge (:func:`repro.eval.runner.assemble_report`), so
    ``reports_identical`` is a hard gate, not a statistic.  Both sides run
    ``cache=False`` so neither is confounded by store state.

    Also probes the dedup fast path: a duplicate lift submission must be
    answered from the store (``source == "store"``) with zero re-lifts.
    """
    import os
    import tempfile

    from repro.corpus import build_corpus
    from repro.elf import save_binary
    from repro.eval.runner import run_corpus
    from repro.serve import ServeClient, Server, ServerConfig

    corpus = build_corpus(scale)
    reset_caches()
    direct_start = time.perf_counter()
    direct_report = run_corpus(corpus=corpus,
                               timeout_seconds=timeout_seconds,
                               max_states=max_states, jobs=1, cache=False)
    direct_seconds = time.perf_counter() - direct_start
    direct_canonical = direct_report.canonical_json()
    instructions = _instruction_totals(direct_report)

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = os.path.join(tmp, "serve.sock")
        elf_path = os.path.join(tmp, "dedup-probe.elf")
        save_binary(corpus.binaries[0].binary, elf_path)
        server = Server(ServerConfig(
            socket_path=socket_path, workers=workers, cache=True,
            cache_dir=os.path.join(tmp, "store"),
            default_timeout_seconds=timeout_seconds,
            default_max_states=max_states))
        server.start()
        try:
            with ServeClient(socket_path, timeout=600.0) as client:
                serve_start = time.perf_counter()
                submitted = client.submit_corpus(
                    scale=scale, cache=False,
                    options={"timeout_seconds": timeout_seconds,
                             "max_states": max_states})
                status = client.wait(submitted["job_id"], timeout=600.0)
                serve_seconds = time.perf_counter() - serve_start
                result = client.result(submitted["job_id"])["result"]
                first = client.submit_lift(
                    elf_path,
                    options={"timeout_seconds": timeout_seconds,
                             "max_states": max_states})
                client.wait(first["job_id"], timeout=600.0)
                duplicate = client.submit_lift(
                    elf_path,
                    options={"timeout_seconds": timeout_seconds,
                             "max_states": max_states})
                stats = client.stats()
        finally:
            server.close()

    serve_canonical = result["canonical_json"]
    return {
        "scale": scale,
        "workers": workers,
        "timeout_seconds": timeout_seconds,
        "max_states": max_states,
        "instructions": instructions,
        "functions": len(direct_report.records),
        "direct_seconds": round(direct_seconds, 3),
        "serve_seconds": round(serve_seconds, 3),
        "direct_instrs_per_second": round(instructions / direct_seconds, 1)
        if direct_seconds else 0.0,
        "serve_instrs_per_second": round(instructions / serve_seconds, 1)
        if serve_seconds else 0.0,
        "reports_identical": serve_canonical == direct_canonical,
        "serve_state": status["state"],
        "dedup_source": duplicate.get("source"),
        "dedup_store_answers": stats["dedup"]["store_answers"],
        "worker_respawns": stats["workers"].get("respawns", 0),
    }


def run_profile_bench(scale: int = 1, timeout_seconds: float = 10.0,
                      max_states: int = 10_000, jobs: int = 1) -> dict:
    """Corpus lift with obs on, folded into the phase cost profile.

    ``coverage`` is the fraction of summed lift wall time attributed to
    named phases (self-time, no double counting) — the quantity the >=95%
    acceptance gate is stated over.  The rollup's canonical form (phase
    counts minus ``smt``, exact event totals) is serial/parallel-identical;
    ``coverage`` itself is wall-clock and is reported, not canonicalized.
    """
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus
    from repro.obs.profile import profile_rollup

    reset_caches()
    corpus = build_corpus(scale)
    report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                        max_states=max_states, jobs=jobs, obs=True,
                        cache=False)
    lift_wall = sum(record.seconds for record in report.records)
    rollup = profile_rollup(report.obs, wall_seconds=lift_wall)
    rollup["scale"] = scale
    rollup["jobs"] = jobs
    rollup["phases"] = {
        name: {"self_seconds": round(slot["self_seconds"], 6),
               "wall_seconds": round(slot["wall_seconds"], 6),
               "count": slot["count"]}
        for name, slot in sorted(rollup["phases"].items())
    }
    return rollup


def record_history(current: dict, history_dir: "str | Path",
                   kind: str = "bench") -> dict:
    """Append one ``run_bench`` measurement to the persistent run history
    (:mod:`repro.obs.history`); returns the canonical record."""
    from repro.obs.history import HistoryStore
    from repro.perf.store import semantics_fingerprint

    cnt = current.get("counters", {})
    smt_queries = cnt.get("solver_hits", 0) + cnt.get("solver_misses", 0)
    options = {"timeout_seconds": current.get("timeout_seconds", 10.0),
               "max_states": current.get("max_states", 10_000)}
    store = HistoryStore(history_dir)
    return store.append(
        kind=kind,
        scale=current.get("scale", 0),
        jobs=current.get("jobs", 1),
        options=options,
        fingerprint=semantics_fingerprint(),
        metrics={
            "instructions": current.get("instructions", 0),
            "functions": current.get("functions", 0),
            "smt_queries": smt_queries,
            "lift_joins": cnt.get("lift_joins", 0),
        },
        timing={
            "lift_seconds": current.get("lift_seconds", 0.0),
            "build_seconds": current.get("build_seconds", 0.0),
            "instrs_per_second": current.get("instrs_per_second", 0.0),
        },
    )


def load_baseline(name: str, scale: int) -> dict | None:
    """The named checked-in baseline's scale-*scale* measurement, or None
    (unknown name, missing file, or scale not recorded)."""
    path = BASELINES.get(name)
    if path is None or not path.exists():
        return None
    data = json.loads(path.read_text())
    return data.get(f"scale_{scale}")


def bench_report(scale: int = 3, jobs: int = 1,
                 timeout_seconds: float = 10.0, max_states: int = 10_000,
                 check_determinism: bool = False,
                 check_trace_overhead: bool = False,
                 check_cache: bool = False,
                 check_schedule: bool = False,
                 check_summaries: bool = False,
                 check_profile: bool = False,
                 check_serve: bool = False,
                 check_engine: bool = False,
                 engine_rounds: int = 2,
                 serve_workers: int = 2,
                 history_dir: str | Path | None = None,
                 out_path: str | Path | None = None) -> tuple[dict, str]:
    """Run the bench, compare against the checked-in baseline, and render.

    Returns ``(payload, text)``; *payload* is also written to *out_path*
    (JSON) when given.  ``check_trace_overhead`` additionally measures the
    obs-enabled lift-time ratio on the scale-1 corpus.  ``check_cache``
    adds the cold/warm persistent-store split (``run_cache_bench``) at the
    same scale; ``check_schedule`` adds the address-vs-SCC A/B
    (``run_schedule_bench``, scale 1); ``check_summaries`` adds the
    pointer-summaries feedback A/B (``run_summaries_bench``, same scale);
    ``check_profile`` adds the phase cost profile (``run_profile_bench``,
    same scale) with its wall-attribution coverage; ``check_engine`` adds
    the τ-vs-uop engine A/B (``run_engine_bench``, same scale,
    *engine_rounds* interleaved rounds).

    *history_dir* appends the run to the persistent history there
    (default None: benches never write history implicitly — the CLI opts
    in with the repo's ``benchmarks/history``).
    """
    current = run_bench(scale=scale, jobs=jobs,
                        timeout_seconds=timeout_seconds,
                        max_states=max_states,
                        check_determinism=check_determinism)
    baseline = load_baseline("pr2", scale)
    payload = {"baseline": baseline, "current": current}
    if baseline and baseline.get("instrs_per_second"):
        payload["speedup"] = round(
            current["instrs_per_second"] / baseline["instrs_per_second"], 2
        )
    pr5_baseline = load_baseline("pr5", scale)
    if pr5_baseline and pr5_baseline.get("instrs_per_second"):
        payload["pr5_baseline"] = pr5_baseline
        payload["pr5_speedup"] = round(
            current["instrs_per_second"] / pr5_baseline["instrs_per_second"], 2
        )
    if check_trace_overhead:
        payload["trace_overhead"] = trace_overhead(
            scale=1, timeout_seconds=timeout_seconds, max_states=max_states)
    if check_cache:
        payload["cache"] = run_cache_bench(
            scale=scale, timeout_seconds=timeout_seconds,
            max_states=max_states)
    if check_schedule:
        payload["schedule"] = run_schedule_bench(
            scale=1, timeout_seconds=timeout_seconds, max_states=max_states)
    if check_summaries:
        payload["summaries"] = run_summaries_bench(
            scale=scale, timeout_seconds=timeout_seconds,
            max_states=max_states)
        pr6_baseline = load_baseline("pr6", scale)
        if pr6_baseline:
            payload["pr6_baseline"] = pr6_baseline
    if check_profile:
        payload["profile"] = run_profile_bench(
            scale=scale, timeout_seconds=timeout_seconds,
            max_states=max_states)
    if check_serve:
        payload["serve"] = run_serve_bench(
            scale=scale, workers=serve_workers,
            timeout_seconds=timeout_seconds, max_states=max_states)
    if check_engine:
        payload["engine"] = run_engine_bench(
            scale=scale, timeout_seconds=timeout_seconds,
            max_states=max_states, rounds=engine_rounds)
    if history_dir is not None:
        payload["history_record"] = record_history(current, history_dir)
        serve = payload.get("serve")
        if serve is not None:
            # A distinct run key (kind="serve") so the history gate tracks
            # server-path throughput separately from the direct bench.
            payload["serve_history_record"] = record_history(
                {"scale": serve["scale"], "jobs": serve["workers"],
                 "timeout_seconds": serve["timeout_seconds"],
                 "max_states": serve["max_states"],
                 "instructions": serve["instructions"],
                 "functions": serve["functions"],
                 "lift_seconds": serve["serve_seconds"],
                 "build_seconds": 0.0,
                 "instrs_per_second": serve["serve_instrs_per_second"],
                 "counters": {}},
                history_dir, kind="serve")
        engine = payload.get("engine")
        if engine is not None:
            # kind="engine": the uop engine's repeat-pass (in-memory-warm
            # cold-path lift) throughput from the last round, so the
            # history gate tracks the micro-op engine separately.
            uop_repeat = engine["sides"][-1]["uop"]["repeat"]
            payload["engine_history_record"] = record_history(
                {"scale": engine["scale"], "jobs": 1,
                 "timeout_seconds": timeout_seconds,
                 "max_states": max_states,
                 "instructions": uop_repeat["instructions"],
                 "functions": uop_repeat["functions"],
                 "lift_seconds": uop_repeat["lift_seconds"],
                 "build_seconds": 0.0,
                 "instrs_per_second": uop_repeat["instrs_per_second"],
                 "counters": {}},
                history_dir, kind="engine")

    lines = [
        f"Bench: scale-{scale} corpus, jobs={jobs}",
        f"  build    {current['build_seconds']:>9.3f} s",
        f"  lift     {current['lift_seconds']:>9.3f} s",
        f"  instrs   {current['instructions']:>9}",
        f"  instrs/s {current['instrs_per_second']:>9.1f}",
        f"  interning hit rate {current['hit_rates']['interning']:.1%}  "
        f"solver hit rate {current['hit_rates']['solver']:.1%}",
    ]
    if baseline:
        lines.append(
            f"  baseline {baseline['instrs_per_second']:>9.1f} instrs/s"
            f"  -> speedup {payload.get('speedup', 0):.2f}x"
        )
    determinism = current.get("determinism")
    if determinism is not None:
        lines.append(
            "  serial == parallel (canonical): "
            + ("OK" if determinism["ok"] else "MISMATCH")
        )
    overhead = payload.get("trace_overhead")
    if overhead is not None:
        lines.append(
            f"  tracing overhead (scale-{overhead['scale']}, sampling "
            f"{overhead['sampling']}): off {overhead['off_seconds']:.3f} s, "
            f"on {overhead['on_seconds']:.3f} s -> "
            f"{overhead['overhead_ratio']:.3f}x (best paired round of "
            f"{overhead['rounds']})"
        )
    cache = payload.get("cache")
    if cache is not None:
        lines.append(
            f"  lift store: cold {cache['cold']['instrs_per_second']:.1f} "
            f"instrs/s, warm {cache['warm']['instrs_per_second']:.1f} "
            f"instrs/s -> {cache['warm_speedup']:.2f}x "
            f"(hits {cache['warm']['cache_hits']}, "
            f"misses {cache['warm']['cache_misses']}); "
            "cold == warm (canonical): "
            + ("OK" if cache["reports_identical"] else "MISMATCH")
            + ", jobs=2: "
            + ("OK" if cache["reports_identical_jobs2"] else "MISMATCH")
        )
    schedule = payload.get("schedule")
    if schedule is not None:
        lines.append(
            f"  schedule A/B (scale-{schedule['scale']}): address "
            f"{schedule['address']['lift_joins']} joins, scc "
            f"{schedule['scc']['lift_joins']} joins -> "
            f"{schedule['join_reduction']:.1%} fewer; verdicts "
            + ("identical" if schedule["verdicts_identical"] else "DIFFER")
        )
    summaries = payload.get("summaries")
    if summaries is not None:
        combined = summaries["combined"]
        lines.append(
            f"  summaries A/B (scale-{summaries['scale']} corpus + "
            f"{len(summaries['workloads'])} workloads): "
            f"off {combined['off_lift_joins']} joins / "
            f"{combined['off_smt_queries']} SMT queries, "
            f"on {combined['on_lift_joins']} joins / "
            f"{combined['on_smt_queries']} SMT queries -> "
            f"{summaries['join_reduction']:.1%} fewer joins, "
            f"{summaries['smt_query_reduction']:.1%} fewer queries "
            f"({summaries['on']['pointer_refined_havocs']} corpus refined "
            "havocs); verdicts "
            + ("identical" if summaries["verdicts_identical"] else "DIFFER")
            + ", annotations "
            + ("bounded" if summaries["annotations_bounded"] else "GREW")
        )
    profile = payload.get("profile")
    if profile is not None:
        top = sorted(profile["phases"].items(),
                     key=lambda item: -item[1]["self_seconds"])[:3]
        hottest = ", ".join(f"{name} {slot['self_seconds']:.2f}s"
                            for name, slot in top)
        lines.append(
            f"  profile (scale-{profile['scale']}): "
            f"{profile.get('coverage', 0):.1%} of "
            f"{profile.get('wall_seconds', 0):.3f} s lift wall attributed; "
            f"hottest: {hottest}"
        )
    serve = payload.get("serve")
    if serve is not None:
        lines.append(
            f"  serve A/B (scale-{serve['scale']}, "
            f"{serve['workers']} workers): direct "
            f"{serve['direct_instrs_per_second']:.1f} instrs/s, served "
            f"{serve['serve_instrs_per_second']:.1f} instrs/s; "
            "direct == served (canonical): "
            + ("OK" if serve["reports_identical"] else "MISMATCH")
            + f"; dedup source {serve['dedup_source']}"
        )
    engine = payload.get("engine")
    if engine is not None:
        last = engine["sides"][-1]
        tau_path = last["tau"]["repeat"]["transfer_path_instrs_per_second"]
        uop_path = last["uop"]["repeat"]["transfer_path_instrs_per_second"]
        compile_stats = last["uop"]["caches"]["uop.compile"]
        lines.append(
            f"  engine A/B (scale-{engine['scale']}, {engine['rounds']} "
            f"rounds): transfer-path tau {tau_path:.1f} instrs/s, uop "
            f"{uop_path:.1f} instrs/s -> cold-path "
            f"{engine['cold_path_speedup']:.2f}x repeat-lift "
            f"({engine['first_visit_speedup']:.2f}x first-visit); "
            f"compile table {compile_stats['hits']} hits / "
            f"{compile_stats['misses']} compiles"
            + (", cold each round" if engine["compile_cold_each_round"]
               else ", WARMTH LEAKED ACROSS ROUNDS")
        )
        lines.append(
            "  engine reports: tau == uop (canonical): "
            + ("OK" if engine["reports_identical"] else "MISMATCH")
            + ", uop serial == jobs=2: "
            + ("OK" if engine["reports_identical_jobs2"] else "MISMATCH")
        )
    record = payload.get("history_record")
    if record is not None:
        lines.append(f"  history: recorded {record['id']} ({record['key']})")
    serve_record = payload.get("serve_history_record")
    if serve_record is not None:
        lines.append(f"  history: recorded {serve_record['id']} "
                     f"({serve_record['key']})")
    engine_record = payload.get("engine_history_record")
    if engine_record is not None:
        lines.append(f"  history: recorded {engine_record['id']} "
                     f"({engine_record['key']})")
    text = "\n".join(lines)

    if out_path is not None:
        Path(out_path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                                  + "\n")
    return payload, text
