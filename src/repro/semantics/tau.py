"""The symbolic step function: Definition 4.2's ``step_Σ``.

``step(state, instr, ctx)`` evaluates the instruction's memory operands,
inserts their regions into the memory model (forking per Definition 3.7),
then applies the predicate transformer τ for the instruction on each forked
model.  Successors carry the assumptions recorded by the solver and events
(calls, returns, terminals, unknown writes) for the lifter.

Soundness contract (Lemma 4.5 hypothesis): for every concrete transition
``s →_B s'`` with ``s ⊢ ⟨P, M⟩``, some successor ``⟨P', M'⟩`` satisfies
``s' ⊢ ⟨P', M'⟩``.  The differential tests drive random programs through
the concrete CPU and check exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr import Const, Expr, RegRef, Var, simplify as s
from repro.isa import Imm, Instruction, Mem, Reg, condition_of
from repro.isa.registers import family_of, with_width
from repro.memmodel import ins
from repro.pred import FlagState, Predicate, condition_clause
from repro.pred.flags import condition_expr
from repro.smt.solver import Assumption, Region
from repro.semantics.events import (
    CallEvent,
    Event,
    RetEvent,
    TerminalEvent,
    UnknownWriteEvent,
)
from repro.semantics.memory import read_region, write_region
from repro.semantics.state import LiftContext, SymState


@dataclass(frozen=True)
class Successor:
    state: SymState
    assumptions: tuple[Assumption, ...] = ()
    events: tuple[Event, ...] = ()


class UnsupportedInstruction(NotImplementedError):
    """τ has no transformer for this instruction."""


def mem_addr_expr(mem: Mem, instr: Instruction) -> Expr:
    """The address computation of a memory operand, over current registers."""
    if mem.base == "rip":
        return Const((instr.end + mem.disp) & ((1 << 64) - 1))
    expr: Expr = Const(mem.disp & ((1 << 64) - 1))
    if mem.base:
        expr = s.add(expr, RegRef(mem.base))
    if mem.index:
        expr = s.add(expr, s.mul(RegRef(mem.index), Const(mem.scale)))
    return expr


def eval_mem_region(
    mem: Mem, instr: Instruction, pred: Predicate
) -> Region | None:
    """Evaluate a memory operand to a Region (None = ⊥, not inserted)."""
    addr = pred.eval(mem_addr_expr(mem, instr))
    if addr is None:
        return None
    return Region(addr, mem.width // 8)


def _instruction_regions(
    instr: Instruction, pred: Predicate
) -> list[Region | None]:
    """All memory regions the instruction touches (Definition 4.2's R).

    ``None`` entries mark operands whose address could not be evaluated."""
    regions: list[Region | None] = []
    for op in instr.operands:
        if isinstance(op, Mem):
            regions.append(eval_mem_region(op, instr, pred))
    rsp = pred.get_reg("rsp")
    mnemonic = instr.mnemonic
    if mnemonic == "push" and rsp is not None:
        regions.append(Region(s.sub(rsp, Const(8)), 8))
    elif mnemonic in ("pop", "ret") and rsp is not None:
        regions.append(Region(rsp, 8))
    elif mnemonic == "leave":
        rbp = pred.get_reg("rbp")
        if rbp is not None:
            regions.append(Region(rbp, 8))
    elif mnemonic in ("movsb", "movsq", "stosb", "stosq", "lodsb", "lodsq"):
        size = 1 if mnemonic.endswith("b") else 8
        rdi, rsi = pred.get_reg("rdi"), pred.get_reg("rsi")
        if mnemonic.startswith(("movs", "stos")) and rdi is not None:
            regions.append(Region(rdi, size))
        if mnemonic.startswith(("movs", "lods")) and rsi is not None:
            regions.append(Region(rsi, size))
    return regions


def step(state: SymState, instr: Instruction, ctx: LiftContext) -> list[Successor]:
    """``step_Σ``: all successor symbolic states of *state* under *instr*."""
    regions = _instruction_regions(instr, state.pred)
    evaluable = [r for r in regions if r is not None]

    # Fork the memory model over the new regions (Definition 4.2).
    forks: list[tuple[SymState, tuple[Assumption, ...]]] = [(state, ())]
    for region in evaluable:
        next_forks = []
        for forked, assumptions in forks:
            for result in ins(region, forked.model, forked.pred):
                next_forks.append(
                    (forked.with_model(result.model),
                     assumptions + result.assumptions)
                )
        forks = next_forks

    successors: list[Successor] = []
    for forked, assumptions in forks:
        for succ in _transform(forked, instr, ctx):
            successors.append(
                Successor(succ.state, assumptions + succ.assumptions, succ.events)
            )
    return successors


# -- operand access -----------------------------------------------------------------


def _read_operand(
    state: SymState, op, instr: Instruction, ctx: LiftContext
) -> Expr | None:
    """Constant-expression value of an operand, or None (⊥)."""
    if isinstance(op, Reg):
        value = state.pred.get_reg(op.family)
        if value is None:
            return None
        return s.low(value, op.width) if op.width < 64 else value
    if isinstance(op, Imm):
        return Const(op.value, op.width)
    if isinstance(op, Mem):
        region = eval_mem_region(op, instr, state.pred)
        if region is None:
            return None
        return read_region(state, region, ctx)
    raise TypeError(f"bad operand {op!r}")


def _operand_width(op) -> int:
    return op.width


def _write_reg(pred: Predicate, name: str, value: Expr | None) -> Predicate:
    """Write a (possibly sub-) register; None clears the valuation."""
    family = family_of(name)
    regs = pred.reg_dict()
    from repro.isa.registers import reg_width

    width = reg_width(name)
    if value is None:
        regs.pop(family, None)
        return pred.with_regs(regs)
    if width == 64:
        regs[family] = value
    elif width == 32:
        regs[family] = s.zext(s.low(value, 32) if value.width > 32 else value, 64)
    else:
        old = regs.get(family)
        if old is None:
            regs.pop(family, None)
            return pred.with_regs(regs)
        keep_mask = ~((1 << width) - 1)
        narrowed = s.low(value, width) if value.width > width else value
        regs[family] = s.or_(
            s.and_(old, Const(keep_mask)), s.zext(narrowed, 64)
        )
    return pred.with_regs(regs)


def _store(
    state: SymState, op, value: Expr | None, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    """Write *value* to a register or memory operand."""
    if isinstance(op, Reg):
        return state.with_pred(_write_reg(state.pred, op.name, value)), ()
    if isinstance(op, Mem):
        region = eval_mem_region(op, instr, state.pred)
        if region is None:
            return _unknown_write(state, instr)
        if value is None:
            value = ctx.names.fresh("havoc", region.size * 8)
        return state.with_pred(write_region(state, region, value, ctx)), ()
    raise TypeError(f"cannot store to {op!r}")


def _unknown_write(
    state: SymState, instr: Instruction
) -> tuple[SymState, tuple[Event, ...]]:
    """A write to an unevaluable address may touch anything — including the
    return address.  Havoc all memory knowledge and flag the event."""
    from repro.memmodel import MemModel

    pred = state.pred.with_mem({})
    model = MemModel(
        frozenset(), state.model.destroyed | state.model.all_regions()
    )
    havocked = SymState(
        pred=pred, model=model, epoch=1, reachable=state.reachable
    )
    event = UnknownWriteEvent(f"write via unevaluable address at {instr}")
    return havocked, (event,)


def _advance(pred: Predicate, instr: Instruction) -> Predicate:
    regs = pred.reg_dict()
    regs["rip"] = Const(instr.end)
    return pred.with_regs(regs)


# -- the transformer ------------------------------------------------------------------


def _transform(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> list[Successor]:
    mnemonic = instr.mnemonic
    ops = instr.operands
    pred = state.pred

    # Control flow first.
    if mnemonic in ("hlt", "ud2", "int3"):
        return [Successor(state, events=(TerminalEvent(mnemonic),))]
    if mnemonic == "syscall":
        return [Successor(state, events=(TerminalEvent("syscall"),))]
    if mnemonic == "jmp":
        return _jmp(state, instr, ctx)
    if mnemonic == "call":
        return _call(state, instr, ctx)
    if mnemonic == "ret":
        return _ret(state, instr, ctx)
    cc = condition_of(mnemonic)
    if cc is not None and mnemonic.startswith("j"):
        return _jcc(state, instr, cc)

    # Data flow: compute the new predicate, advance rip.
    new_state, events = _dataflow(state, instr, ctx)
    new_state = new_state.with_pred(_advance(new_state.pred, instr))
    return [Successor(new_state, events=events)]


def _jmp(state: SymState, instr: Instruction, ctx: LiftContext) -> list[Successor]:
    (target,) = instr.operands
    if isinstance(target, Imm):
        dest = (instr.end + target.signed) & ((1 << 64) - 1)
        pred = state.pred.with_regs({**state.pred.reg_dict(), "rip": Const(dest)})
        return [Successor(state.with_pred(pred))]
    value = _read_operand(state, target, instr, ctx)
    regs = state.pred.reg_dict()
    if value is None:
        regs.pop("rip", None)
    else:
        regs["rip"] = value
    pred = state.pred.with_regs(regs)
    return [Successor(state.with_pred(pred))]


def _call(state: SymState, instr: Instruction, ctx: LiftContext) -> list[Successor]:
    (target,) = instr.operands
    if isinstance(target, Imm):
        dest: Expr | None = Const((instr.end + target.signed) & ((1 << 64) - 1))
    else:
        dest = _read_operand(state, target, instr, ctx)
    event = CallEvent(target=dest, return_addr=instr.end)
    regs = state.pred.reg_dict()
    regs.pop("rip", None)  # the lifter decides where control goes
    return [Successor(state.with_pred(state.pred.with_regs(regs)), events=(event,))]


def _ret(state: SymState, instr: Instruction, ctx: LiftContext) -> list[Successor]:
    pred = state.pred
    rsp = pred.get_reg("rsp")
    value: Expr | None = None
    if rsp is not None:
        value = read_region(state, Region(rsp, 8), ctx)
    regs = pred.reg_dict()
    if value is None:
        regs.pop("rip", None)
    else:
        regs["rip"] = value
    rsp_after: Expr | None = None
    if rsp is not None:
        pop_bytes = 8 + (instr.operands[0].value if instr.operands else 0)
        rsp_after = s.add(rsp, Const(pop_bytes))
        regs["rsp"] = rsp_after
    pred = pred.with_regs(regs)
    event = RetEvent(target=value, rsp_after=rsp_after)
    return [Successor(state.with_pred(pred), events=(event,))]


def _jcc(state: SymState, instr: Instruction, cc: str) -> list[Successor]:
    (target,) = instr.operands
    taken_rip = Const((instr.end + target.signed) & ((1 << 64) - 1))
    fall_rip = Const(instr.end)
    flags = state.pred.flags
    successors = []
    for taken, rip in ((True, taken_rip), (False, fall_rip)):
        pred = state.pred.with_regs({**state.pred.reg_dict(), "rip": rip})
        if flags is not None:
            clause = condition_clause(flags, cc, taken)
            if clause is not None:
                if _trivially_false(clause):
                    continue  # this edge is infeasible
                if not _trivially_true(clause):
                    pred = pred.with_clause(clause)
        successors.append(Successor(state.with_pred(pred)))
    return successors


def _trivially_false(clause) -> bool:
    from repro.expr import Const as C

    if isinstance(clause.lhs, C) and isinstance(clause.rhs, C):
        from repro.expr import EvalEnv

        return not clause.holds(EvalEnv())
    return False


def _trivially_true(clause) -> bool:
    from repro.expr import Const as C

    if isinstance(clause.lhs, C) and isinstance(clause.rhs, C):
        from repro.expr import EvalEnv

        return clause.holds(EvalEnv())
    return False


# -- non-control-flow instructions ------------------------------------------------------


def _dataflow(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    mnemonic = instr.mnemonic
    ops = instr.operands
    pred = state.pred

    if mnemonic == "nop":
        return state, ()

    if mnemonic in ("mov", "movabs"):
        dst, src = ops
        value = _read_operand(state, src, instr, ctx)
        if isinstance(src, Imm) and isinstance(dst, (Reg, Mem)):
            # mov sign-/zero-extends immediates to the destination width.
            width = _operand_width(dst)
            value = Const(Imm(src.value, src.width).signed, width) \
                if src.width < width else value
        return _store(state, dst, value, instr, ctx)

    if mnemonic == "lea":
        dst, src = ops
        addr = pred.eval(mem_addr_expr(src, instr))
        value = None if addr is None else (
            s.low(addr, dst.width) if dst.width < 64 else addr
        )
        return _store(state, dst, value, instr, ctx)

    if mnemonic in ("movzx", "movsx", "movsxd"):
        dst, src = ops
        value = _read_operand(state, src, instr, ctx)
        if value is not None:
            extend = s.zext if mnemonic == "movzx" else s.sext
            value = extend(value, dst.width)
        return _store(state, dst, value, instr, ctx)

    if mnemonic in ("add", "sub", "and", "or", "xor", "cmp", "test"):
        return _alu(state, instr, ctx)

    if mnemonic in ("adc", "sbb"):
        # Carry-dependent: sound havoc of the destination and flags.
        dst = ops[0]
        havoc = ctx.names.fresh("havoc", _operand_width(dst))
        new_state, events = _store(state, dst, havoc, instr, ctx)
        return new_state.with_pred(new_state.pred.with_flags(None)), events

    if mnemonic in ("inc", "dec", "neg", "not"):
        (dst,) = ops
        width = _operand_width(dst)
        value = _read_operand(state, dst, instr, ctx)
        result = None
        if value is not None:
            if mnemonic == "inc":
                result = s.add(value, Const(1, width), width)
            elif mnemonic == "dec":
                result = s.sub(value, Const(1, width), width)
            elif mnemonic == "neg":
                result = s.neg(value, width)
            else:
                result = s.not_(value, width)
        new_state, events = _store(state, dst, result, instr, ctx)
        flags = None
        if result is not None and mnemonic != "not":
            flags = FlagState("arith", result, None, width)
        if mnemonic == "not":
            flags = state.pred.flags  # not does not touch flags
        return new_state.with_pred(new_state.pred.with_flags(flags)), events

    if mnemonic in ("shl", "shr", "sar", "rol", "ror"):
        return _shift(state, instr, ctx)

    if mnemonic == "imul":
        return _imul(state, instr, ctx)
    if mnemonic in ("mul", "div", "idiv"):
        return _muldiv(state, instr, ctx)
    if mnemonic in ("cdq", "cqo", "cdqe"):
        return _extend_rax(state, instr, ctx)

    if mnemonic == "xchg":
        dst, src = ops
        a = _read_operand(state, dst, instr, ctx)
        b = _read_operand(state, src, instr, ctx)
        new_state, ev1 = _store(state, dst, b, instr, ctx)
        new_state, ev2 = _store(new_state, src, a, instr, ctx)
        return new_state, ev1 + ev2

    if mnemonic == "push":
        return _push(state, instr, ctx)
    if mnemonic == "pop":
        return _pop(state, instr, ctx)
    if mnemonic == "leave":
        return _leave(state, instr, ctx)
    if mnemonic in ("movsb", "movsq", "stosb", "stosq", "lodsb", "lodsq") \
            or mnemonic.startswith("rep_"):
        return _string_op(state, instr, ctx)

    if mnemonic.startswith("set") and condition_of(mnemonic):
        (dst,) = ops
        cond = None
        if state.pred.flags is not None:
            cond = condition_expr(state.pred.flags, condition_of(mnemonic))
        value = s.zext(cond, 8) if cond is not None else None
        return _store(state, dst, value, instr, ctx)

    if mnemonic.startswith("cmov") and condition_of(mnemonic):
        dst, src = ops
        cond = None
        if state.pred.flags is not None:
            cond = condition_expr(state.pred.flags, condition_of(mnemonic))
        old = _read_operand(state, dst, instr, ctx)
        new = _read_operand(state, src, instr, ctx)
        value = None
        if cond is not None and old is not None and new is not None:
            value = s.ite(cond, new, old, dst.width)
        return _store(state, dst, value, instr, ctx)

    raise UnsupportedInstruction(str(instr))


_FLAG_KIND = {"cmp": "cmp", "sub": "cmp", "test": "test"}


def _alu(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    mnemonic = instr.mnemonic
    dst, src = instr.operands
    width = _operand_width(dst)
    a = _read_operand(state, dst, instr, ctx)
    b = _read_operand(state, src, instr, ctx)
    if b is not None and isinstance(src, Imm) and src.width < width:
        b = Const(Imm(src.value, src.width).signed, width)
    elif b is not None and b.width < width:
        b = s.zext(b, width)

    result = None
    if a is not None and b is not None:
        builder = {
            "add": s.add, "sub": s.sub, "cmp": s.sub,
            "and": s.and_, "or": s.or_, "xor": s.xor, "test": s.and_,
        }[mnemonic]
        result = builder(a, b, width)

    # Flags.
    if a is not None and b is not None:
        kind = _FLAG_KIND.get(mnemonic)
        if kind is not None:
            flags = FlagState(kind, a, b, width)
        else:
            flags = FlagState("arith", result, None, width)
    else:
        flags = None

    if mnemonic in ("cmp", "test"):
        return state.with_pred(state.pred.with_flags(flags)), ()
    new_state, events = _store(state, dst, result, instr, ctx)
    return new_state.with_pred(new_state.pred.with_flags(flags)), events


def _shift(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    mnemonic = instr.mnemonic
    dst, amount = instr.operands
    width = _operand_width(dst)
    a = _read_operand(state, dst, instr, ctx)
    n = _read_operand(state, amount, instr, ctx)
    result = None
    if a is not None and n is not None and mnemonic in ("shl", "shr", "sar"):
        builder = {"shl": s.shl, "shr": s.shr, "sar": s.sar}[mnemonic]
        masked = s.and_(s.zext(n, width) if n.width < width else n,
                        Const(width - 1, width), width)
        result = builder(a, masked, width)
    elif a is not None and n is not None and isinstance(n, Const):
        shift = n.value % width
        if mnemonic == "rol":
            result = s.or_(
                s.shl(a, Const(shift, width), width),
                s.shr(a, Const(width - shift, width), width), width
            ) if shift else a
        else:
            result = s.or_(
                s.shr(a, Const(shift, width), width),
                s.shl(a, Const(width - shift, width), width), width
            ) if shift else a
    new_state, events = _store(state, dst, result, instr, ctx)
    count = None
    if n is not None and isinstance(n, Const):
        count = n.value & (63 if width == 64 else 31)
    if mnemonic in ("rol", "ror"):
        # Rotates touch only CF/OF on hardware (and nothing at all in the
        # reference machine): claiming result-derived SF/ZF would be
        # unsound, so havoc the flag state.
        flags = None
    elif count == 0:
        flags = state.pred.flags   # zero-count shifts leave flags alone
    elif result is None or count is None:
        # Variable (cl) shift count: a zero count would leave the previous
        # flags in place, so a blanket result-derived claim is unsound.
        flags = None
    else:
        flags = FlagState("arith", result, None, width)
    return new_state.with_pred(new_state.pred.with_flags(flags)), events


def _imul(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    ops = instr.operands
    if len(ops) == 1:
        return _muldiv(state, instr, ctx)
    if len(ops) == 2:
        dst, src = ops
        a = _read_operand(state, dst, instr, ctx)
        b = _read_operand(state, src, instr, ctx)
        result = s.mul(a, b, dst.width) if a is not None and b is not None else None
    else:
        dst, src, imm = ops
        b = _read_operand(state, src, instr, ctx)
        result = (
            s.mul(b, Const(imm.signed, dst.width), dst.width)
            if b is not None else None
        )
    new_state, events = _store(state, dst, result, instr, ctx)
    return new_state.with_pred(new_state.pred.with_flags(None)), events


def _muldiv(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    mnemonic = instr.mnemonic
    (src,) = instr.operands
    width = _operand_width(src)
    pred = state.pred
    rax = pred.get_reg("rax")
    rdx = pred.get_reg("rdx")
    divisor = _read_operand(state, src, instr, ctx)
    rax_name = with_width("rax", width) if width != 64 else "rax"
    rdx_name = with_width("rdx", width) if width != 64 else "rdx"

    if mnemonic in ("mul", "imul"):
        low = None
        if rax is not None and divisor is not None:
            a = s.low(rax, width) if width < 64 else rax
            low = s.mul(a, divisor, width)
        new_pred = _write_reg(pred, rax_name, low)
        new_pred = _write_reg(new_pred, rdx_name,
                              ctx.names.fresh("havoc", width))
        return state.with_pred(new_pred.with_flags(None)), ()

    # div / idiv: model precisely only when the dividend fits in rax
    # (rdx == 0 for div, rdx == sign-extension for idiv).
    quotient = remainder = None
    if rax is not None and divisor is not None and rdx is not None:
        a = s.low(rax, width) if width < 64 else rax
        d = divisor
        rdx_low = s.low(rdx, width) if width < 64 else rdx
        if mnemonic == "div" and rdx_low == Const(0, width):
            quotient = s.udiv(a, d, width)
            remainder = s.urem(a, d, width)
        elif mnemonic == "idiv" and rdx_low == s.sar(a, Const(width - 1, width), width):
            quotient = s.sdiv(a, d, width)
            remainder = s.srem(a, d, width)
    if quotient is None:
        quotient = ctx.names.fresh("havoc", width)
        remainder = ctx.names.fresh("havoc", width)
    new_pred = _write_reg(pred, rax_name, quotient)
    new_pred = _write_reg(new_pred, rdx_name, remainder)
    return state.with_pred(new_pred.with_flags(None)), ()


def _extend_rax(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    pred = state.pred
    rax = pred.get_reg("rax")
    if instr.mnemonic == "cdqe":
        value = None if rax is None else s.sext(s.low(rax, 32), 64)
        return state.with_pred(_write_reg(pred, "rax", value)), ()
    width = 32 if instr.mnemonic == "cdq" else 64
    value = None
    if rax is not None:
        low = s.low(rax, width) if width < 64 else rax
        value = s.sar(low, Const(width - 1, width), width)
    name = "edx" if instr.mnemonic == "cdq" else "rdx"
    return state.with_pred(_write_reg(pred, name, value)), ()


def _push(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    (src,) = instr.operands
    value = _read_operand(state, src, instr, ctx)
    if value is not None and isinstance(src, Imm):
        value = Const(Imm(src.value, src.width).signed, 64)
    elif value is not None and value.width < 64:
        value = s.zext(value, 64)
    pred = state.pred
    rsp = pred.get_reg("rsp")
    if rsp is None:
        return _unknown_write(state, instr)
    new_rsp = s.sub(rsp, Const(8))
    region = Region(new_rsp, 8)
    if value is None:
        value = ctx.names.fresh("havoc", 64)
    new_pred = write_region(state, region, value, ctx)
    new_pred = _write_reg(new_pred, "rsp", new_rsp)
    return state.with_pred(new_pred), ()


def _pop(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    (dst,) = instr.operands
    pred = state.pred
    rsp = pred.get_reg("rsp")
    if rsp is None:
        new_state, events = _store(state, dst, None, instr, ctx)
        return new_state, events
    value = read_region(state, Region(rsp, 8), ctx)
    new_state, events = _store(state, dst, value, instr, ctx)
    new_pred = _write_reg(new_state.pred, "rsp", s.add(rsp, Const(8)))
    return new_state.with_pred(new_pred), events


#: Cap above which a constant rep count is no longer unrolled precisely.
_REP_UNROLL_LIMIT = 64
#: Span used for rep writes whose count cannot be bounded at all.
_UNBOUNDED_SPAN = 1 << 40


def _string_step(
    state: SymState, base: str, size: int, ctx: LiftContext
) -> SymState:
    """One element of movs/stos/lods with precise region accounting."""
    pred = state.pred
    rdi = pred.get_reg("rdi")
    rsi = pred.get_reg("rsi")
    if base.startswith("movs"):
        value = (
            read_region(state, Region(rsi, size), ctx)
            if rsi is not None else ctx.names.fresh("havoc", size * 8)
        )
        if rdi is None:
            new_state, _ = _unknown_write(state, Instruction(base))
            state = new_state
        else:
            state = state.with_pred(
                write_region(state, Region(rdi, size), value, ctx)
            )
        pred = state.pred
        pred = _write_reg(pred, "rdi",
                          s.add(rdi, Const(size)) if rdi is not None else None)
        pred = _write_reg(pred, "rsi",
                          s.add(rsi, Const(size)) if rsi is not None else None)
        return state.with_pred(pred)
    if base.startswith("stos"):
        rax = pred.get_reg("rax")
        value = (
            s.low(rax, size * 8) if rax is not None and size == 1 else rax
        )
        if value is None:
            value = ctx.names.fresh("havoc", size * 8)
        if rdi is None:
            new_state, _ = _unknown_write(state, Instruction(base))
            state = new_state
        else:
            state = state.with_pred(
                write_region(state, Region(rdi, size), value, ctx)
            )
        pred = state.pred
        pred = _write_reg(pred, "rdi",
                          s.add(rdi, Const(size)) if rdi is not None else None)
        return state.with_pred(pred)
    # lods
    value = (
        read_region(state, Region(rsi, size), ctx)
        if rsi is not None else ctx.names.fresh("havoc", size * 8)
    )
    pred = _write_reg(pred, "al" if size == 1 else "rax", value)
    pred = _write_reg(pred, "rsi",
                      s.add(rsi, Const(size)) if rsi is not None else None)
    return state.with_pred(pred)


def _string_op(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    mnemonic = instr.mnemonic
    rep = mnemonic.startswith("rep_")
    base = mnemonic[4:] if rep else mnemonic
    size = 1 if base.endswith("b") else 8

    if not rep:
        return _string_step(state, base, size, ctx), ()

    pred = state.pred
    rcx = pred.get_reg("rcx")
    if isinstance(rcx, Const) and rcx.value <= _REP_UNROLL_LIMIT:
        # Inlined fixed-size memcpy/memset: unroll precisely.
        for _ in range(rcx.value):
            state = _string_step(state, base, size, ctx)
        return state.with_pred(_write_reg(state.pred, "rcx", Const(0))), ()

    # Symbolic count: overapproximate the touched span.
    interval = pred.interval_of(rcx) if rcx is not None else None
    if interval is not None and interval.hi * size <= (1 << 20):
        span = interval.hi * size
    else:
        span = _UNBOUNDED_SPAN
    rdi = pred.get_reg("rdi")
    rsi = pred.get_reg("rsi")
    events: tuple[Event, ...] = ()
    if base.startswith(("movs", "stos")):
        if rdi is None:
            state, events = _unknown_write(state, instr)
        elif span:
            havoc = ctx.names.fresh("havoc", 64)
            state = state.with_pred(
                write_region(state, Region(rdi, span), havoc, ctx)
            )
    pred = state.pred
    advance = s.mul(rcx, Const(size)) if rcx is not None else None
    if base.startswith(("movs", "stos")):
        pred = _write_reg(
            pred, "rdi",
            s.add(rdi, advance) if rdi is not None and advance is not None
            else None,
        )
    if base.startswith(("movs", "lods")):
        pred = _write_reg(
            pred, "rsi",
            s.add(rsi, advance) if rsi is not None and advance is not None
            else None,
        )
    pred = _write_reg(pred, "rcx", Const(0))
    return state.with_pred(pred), events


def _leave(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> tuple[SymState, tuple[Event, ...]]:
    pred = state.pred
    rbp = pred.get_reg("rbp")
    if rbp is None:
        pred = _write_reg(pred, "rsp", None)
        pred = _write_reg(pred, "rbp", None)
        return state.with_pred(pred), ()
    value = read_region(state, Region(rbp, 8), ctx)
    pred = _write_reg(pred, "rbp", value)
    pred = _write_reg(pred, "rsp", s.add(rbp, Const(8)))
    return state.with_pred(pred), ()
