"""A small two-pass assembler with labels for building test/corpus binaries.

The :class:`Assembler` collects instructions, labels and data directives for
one contiguous region (a ``.text`` section, say) and resolves label operands
to branch displacements or absolute addresses on :meth:`assemble`.

Label references:

* a branch target (``jmp``/``jcc``/``call`` immediate) written as a string
  label resolves to a rel32 displacement;
* ``abs64(label)`` used as a mov immediate resolves to the absolute address
  (for building jump tables / function-pointer stores);
* ``Mem`` displacements may use ``rip``-relative labels via ``riprel(label)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encode import encode
from repro.isa.instruction import Instruction, condition_of, insn
from repro.isa.operands import Imm, Mem, Operand, Reg


@dataclass(frozen=True)
class LabelRef:
    """A symbolic reference to a label, resolved at assembly time.

    ``kind`` is one of ``rel32`` (branch displacement), ``abs64`` (absolute
    address immediate) or ``abs32``.
    """

    label: str
    kind: str = "rel32"
    addend: int = 0


def abs64(label: str, addend: int = 0) -> LabelRef:
    """An absolute 64-bit address reference to *label* (for movabs etc.)."""
    return LabelRef(label, "abs64", addend)


def abs32(label: str, addend: int = 0) -> LabelRef:
    """An absolute 32-bit address reference to *label* (for jump tables)."""
    return LabelRef(label, "abs32", addend)


@dataclass
class _Item:
    """One assembly item: an instruction, raw data, a label, or alignment."""

    kind: str  # "insn" | "data" | "label" | "align" | "data_ref"
    payload: object
    size: int = 0


class AssemblyError(ValueError):
    """Malformed assembly input (unknown label, misplaced reference...)."""


class Assembler:
    """Two-pass assembler for one contiguous code/data region."""

    def __init__(self, base: int = 0x401000):
        self.base = base
        self._items: list[_Item] = []
        self.labels: dict[str, int] = {}

    # -- construction ------------------------------------------------------
    def label(self, name: str) -> None:
        """Define *name* at the current position."""
        self._items.append(_Item("label", name))

    def emit(self, mnemonic: str, *operands) -> None:
        """Append one instruction; operands as in :func:`repro.isa.insn`,
        plus string labels for branch targets and :class:`LabelRef`."""
        converted: list[Operand | LabelRef] = []
        is_branch = mnemonic in ("jmp", "call") or condition_of(mnemonic) is not None
        for op in operands:
            if isinstance(op, str) and is_branch and not _is_register_name(op):
                converted.append(LabelRef(op, "rel32"))
            else:
                converted.append(op)
        if any(isinstance(op, LabelRef) for op in converted):
            self._items.append(_Item("insn_ref", (mnemonic, tuple(converted))))
        else:
            self._items.append(_Item("insn", insn(mnemonic, *converted)))

    def raw(self, data: bytes) -> None:
        """Append raw bytes (e.g. deliberately crafted instruction bytes)."""
        self._items.append(_Item("data", data))

    def quad(self, value: "int | LabelRef") -> None:
        """Append an 8-byte little-endian value or label address."""
        if isinstance(value, LabelRef):
            self._items.append(_Item("data_ref", (value, 8)))
        else:
            self.raw((value & (1 << 64) - 1).to_bytes(8, "little"))

    def long(self, value: "int | LabelRef") -> None:
        """Append a 4-byte little-endian value or label address."""
        if isinstance(value, LabelRef):
            self._items.append(_Item("data_ref", (value, 4)))
        else:
            self.raw((value & (1 << 32) - 1).to_bytes(4, "little"))

    def align(self, boundary: int) -> None:
        self._items.append(_Item("align", boundary))

    # -- assembly ----------------------------------------------------------
    def assemble(self) -> bytes:
        """Resolve labels and return the machine code for the region."""
        self._layout()
        out = bytearray()
        for item in self._items:
            pos = self.base + len(out)
            if item.kind == "insn":
                out += encode(item.payload)
            elif item.kind == "insn_ref":
                out += encode(self._resolve(item.payload, pos, item.size))
            elif item.kind == "data":
                out += item.payload
            elif item.kind == "data_ref":
                ref, nbytes = item.payload
                value = self._label_addr(ref)
                out += (value & ((1 << (nbytes * 8)) - 1)).to_bytes(nbytes, "little")
            elif item.kind == "align":
                while (self.base + len(out)) % item.payload:
                    out.append(0x90)
        return bytes(out)

    def _layout(self) -> None:
        """First pass: compute each item's size and label addresses."""
        pos = self.base
        for item in self._items:
            if item.kind == "label":
                self.labels[item.payload] = pos
                item.size = 0
            elif item.kind == "insn":
                item.size = len(encode(item.payload))
            elif item.kind == "insn_ref":
                # Size with placeholder refs; rel32/abs forms are fixed-size.
                item.size = len(encode(self._resolve(item.payload, pos, 0, True)))
            elif item.kind == "data":
                item.size = len(item.payload)
            elif item.kind == "data_ref":
                item.size = item.payload[1]
            elif item.kind == "align":
                item.size = (-pos) % item.payload
            pos += item.size

    def _label_addr(self, ref: LabelRef) -> int:
        if ref.label not in self.labels:
            raise AssemblyError(f"undefined label: {ref.label}")
        return self.labels[ref.label] + ref.addend

    def _resolve(self, payload, pos: int, size: int, placeholder: bool = False):
        mnemonic, operands = payload
        resolved: list[Operand] = []
        for op in operands:
            if isinstance(op, LabelRef):
                if placeholder:
                    target = 0
                else:
                    target = self._label_addr(op)
                if op.kind == "rel32":
                    # Displacement is relative to the end of this instruction.
                    resolved.append(Imm(0 if placeholder else target - (pos + size), 32))
                elif op.kind == "abs64":
                    resolved.append(Imm(target, 64))
                elif op.kind == "abs32":
                    resolved.append(Imm(target, 32))
                else:
                    raise AssemblyError(f"bad label kind: {op.kind}")
            else:
                resolved.append(op)
        return insn(mnemonic, *resolved)


def _is_register_name(name: str) -> bool:
    from repro.isa.registers import is_register

    return is_register(name)
