"""Corpus runner: lifts everything and aggregates the Table 1 statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.corpus import Corpus, build_corpus, function_binary
from repro.hoare import LiftResult, lift, lift_function


@dataclass
class FunctionRecord:
    """One lifted binary entry point or library function (Figure 3 data)."""

    name: str
    directory: str
    kind: str        # "binary" | "function"
    outcome: str     # "lifted" | "unprovable" | "concurrency" | "timeout"
    instructions: int
    states: int
    resolved: int
    unresolved_jumps: int
    unresolved_calls: int
    seconds: float


@dataclass
class DirectoryRow:
    """One row of Table 1."""

    directory: str
    kind: str
    total: int = 0
    lifted: int = 0
    unprovable: int = 0
    concurrency: int = 0
    timeout: int = 0
    instructions: int = 0
    states: int = 0
    resolved: int = 0           # column A
    unresolved_jumps: int = 0   # column B
    unresolved_calls: int = 0   # column C
    seconds: float = 0.0

    def counts_cell(self) -> str:
        return (f"{self.total} = {self.lifted} + {self.unprovable} "
                f"+ {self.concurrency} + {self.timeout}")


@dataclass
class CorpusReport:
    rows: list[DirectoryRow] = field(default_factory=list)
    records: list[FunctionRecord] = field(default_factory=list)

    def totals(self, kind: str) -> DirectoryRow:
        total = DirectoryRow(directory="Total", kind=kind)
        for row in self.rows:
            if row.kind != kind:
                continue
            for attr in ("total", "lifted", "unprovable", "concurrency",
                         "timeout", "instructions", "states", "resolved",
                         "unresolved_jumps", "unresolved_calls", "seconds"):
                setattr(total, attr, getattr(total, attr) + getattr(row, attr))
        return total


def _outcome(result: LiftResult) -> str:
    if result.verified:
        return "lifted"
    kinds = {error.kind for error in result.errors}
    if "concurrency" in kinds:
        return "concurrency"
    if "timeout" in kinds:
        return "timeout"
    return "unprovable"


def run_corpus(
    corpus: Corpus | None = None,
    scale: int = 1,
    timeout_seconds: float = 10.0,
    max_states: int = 10_000,
) -> CorpusReport:
    """Lift every binary and library function; aggregate per directory."""
    if corpus is None:
        corpus = build_corpus(scale)
    report = CorpusReport()
    rows: dict[tuple[str, str], DirectoryRow] = {}

    def row_for(directory: str, kind: str) -> DirectoryRow:
        key = (directory, kind)
        if key not in rows:
            rows[key] = DirectoryRow(directory=directory, kind=kind)
            report.rows.append(rows[key])
        return rows[key]

    def record(name, directory, kind, result: LiftResult) -> None:
        outcome = _outcome(result)
        stats = result.stats
        report.records.append(FunctionRecord(
            name=name, directory=directory, kind=kind, outcome=outcome,
            instructions=stats.instructions, states=stats.states,
            resolved=stats.resolved_indirections,
            unresolved_jumps=stats.unresolved_jumps,
            unresolved_calls=stats.unresolved_calls,
            seconds=stats.seconds,
        ))
        row = row_for(directory, kind)
        row.total += 1
        setattr(row, {"lifted": "lifted", "unprovable": "unprovable",
                      "concurrency": "concurrency", "timeout": "timeout"}[outcome],
                getattr(row, {"lifted": "lifted", "unprovable": "unprovable",
                              "concurrency": "concurrency",
                              "timeout": "timeout"}[outcome]) + 1)
        if outcome == "lifted":
            row.instructions += stats.instructions
            row.states += stats.states
            row.resolved += stats.resolved_indirections
            row.unresolved_jumps += stats.unresolved_jumps
            row.unresolved_calls += stats.unresolved_calls
        row.seconds += stats.seconds

    for corpus_binary in corpus.binaries:
        result = lift(corpus_binary.binary, max_states=max_states,
                      timeout_seconds=timeout_seconds)
        record(corpus_binary.name, corpus_binary.directory, "binary", result)

    for library in corpus.libraries:
        for function in library.functions:
            binary = function_binary(library, function)
            result = lift_function(binary, function, max_states=max_states,
                                   timeout_seconds=timeout_seconds)
            record(f"{library.name}:{function}", library.directory,
                   "function", result)
    return report
