"""The detector pipeline: lift → sanity → triple replay → lint → differential.

A campaign trial runs the full validation stack over one binary and
condenses the *verdict-level* outcome into a canonical **signature** — a
plain JSON-able dict with one section per detector.  Signatures contain
only content a user-facing verdict depends on (outcomes, error kinds,
triple statuses, lint findings, differential failures); they deliberately
exclude exploration statistics, timings and cache-dependent detail, so

* a fault is *detected* exactly when some section differs from the
  fault-free baseline signature of the same target, and
* two fault-free runs — serial, parallel, repeated — produce identical
  signatures (the campaign's zero-false-positive gate).

``killed_by`` attribution is the first differing section in
:data:`DETECTOR_ORDER` (pipeline order), the mutation-testing convention.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.lint import run_lint
from repro.elf import Binary
from repro.export.checker import check_triples
from repro.hoare import lift
from repro.qa.diffsweep import run_battery
from repro.verify.report import report_from

#: Pipeline order; also the order ``killed_by`` attribution scans.
DETECTOR_ORDER = ("lift", "sanity", "triples", "lint", "differential")


def binary_signature(binary: Binary, samples: int = 4,
                     seed: int = 2022,
                     engine: str = "tau") -> dict[str, Any]:
    """The verdict signature of one binary under the current pipeline.

    *engine* selects the transfer engine; signatures are verdict-level,
    so fault-free runs produce the same signature under either engine.
    """
    result = lift(binary, engine=engine)
    signature: dict[str, Any] = {
        "lift": {
            "outcome": "lifted" if result.verified else "rejected",
            "errors": sorted(
                [error.kind, error.addr] for error in result.errors
            ),
            "annotations": dict(result.stats.annotations_by_kind),
            "obligations": sorted(str(ob) for ob in result.obligations),
        },
    }
    sanity = report_from(result)
    signature["sanity"] = {
        "return_address_integrity": sanity.return_address_integrity.holds,
        "bounded_control_flow": sanity.bounded_control_flow.holds,
        "calling_convention": sanity.calling_convention.holds,
    }
    if result.verified:
        report = check_triples(result, samples=samples, seed=seed)
        signature["triples"] = {
            "statuses": {status: report.count(status)
                         for status in ("proven", "assumed", "untested",
                                        "FAILED")},
            "failed": sorted(
                [str(check.src), check.instr_addr, check.detail]
                for check in report.checks if check.status == "FAILED"
            ),
        }
        lint_report = run_lint(result)
        signature["lint"] = sorted(
            [diag.rule, diag.addr, diag.severity]
            for diag in lint_report.findings
        )
    else:
        # No graph to replay or lint — the lift section already carries
        # the rejection; absent sections compare equal across runs.
        signature["triples"] = None
        signature["lint"] = None
    return signature


def battery_signature(seed: int = 2022,
                      engine: str = "tau") -> dict[str, Any]:
    """The signature of the differential pseudo-target: failing forms."""
    return {"differential": run_battery(seed, engine=engine)}


def signature_json(signature: dict[str, Any]) -> str:
    return json.dumps(signature, sort_keys=True, indent=1)


def signature_diff(baseline: dict[str, Any],
                   current: dict[str, Any]) -> list[str]:
    """Detector sections that differ, in pipeline order."""
    out = []
    for section in DETECTOR_ORDER:
        if baseline.get(section) != current.get(section):
            out.append(section)
    return out
