"""Section 5.3 failure examples: the qualitative evaluation artifacts."""

from __future__ import annotations

import io

from repro.corpus import (
    buffer_overflow,
    nonstandard_rsp,
    ret2win,
    stack_probe,
)
from repro.hoare import lift


def generate_failures_report() -> str:
    out = io.StringIO()
    out.write("Section 5.3: examples of failures (and one obligation)\n\n")

    out.write("— Stack Overflow (ret2win): lifting SUCCEEDS with a proof "
              "obligation —\n")
    result = lift(ret2win())
    out.write(f"  verified: {result.verified}\n")
    for obligation in result.obligations:
        out.write(f"  {obligation}\n")
    out.write("  (negating the obligation — memset writing 48 bytes into a "
              "32-byte frame —\n   is exactly the exploit)\n\n")

    out.write("— Stack Probing (/usr/bin/zip shape): verification error —\n")
    result = lift(stack_probe())
    out.write(f"  verified: {result.verified}\n")
    for error in result.errors:
        out.write(f"  {error}\n")
    out.write("\n")

    out.write("— Non-standard stack pointer restoration (/usr/bin/ssh shape):"
              " verification error —\n")
    result = lift(nonstandard_rsp())
    out.write(f"  verified: {result.verified}\n")
    for error in result.errors:
        out.write(f"  {error}\n")
    out.write("\n")

    out.write("— Manually induced buffer overflow (Section 5.1): no HG —\n")
    result = lift(buffer_overflow())
    out.write(f"  verified: {result.verified}\n")
    for error in result.errors:
        out.write(f"  {error}\n")
    return out.getvalue()
