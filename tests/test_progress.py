"""The progress-heartbeat wire format and the runner's ``progress=`` hook.

Contracts under test:

* per-event schema validation: unknown kinds, missing/extra fields, type
  errors (including the bool-is-not-int trap), negative seq, bad outcomes;
* stream invariants: gap-free seq from 0, corpus_started first,
  corpus_finished last;
* ``ProgressEmitter`` produces a valid stream through both sink styles
  (callable and text stream) with cumulative throughput figures;
* ``run_corpus(progress=...)`` emits a schema-valid heartbeat stream in
  both serial and worker-pool modes, without changing the report.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.corpus import Corpus, CorpusBinary
from repro.eval.runner import run_corpus
from repro.minicc import compile_source
from repro.obs.progress import (
    PROGRESS_EVENT_KINDS,
    ProgressEmitter,
    TASK_OUTCOMES,
    as_emitter,
    iter_progress_objects,
    validate_progress_jsonl,
    validate_progress_obj,
)


@pytest.fixture(scope="module")
def tiny_corpus() -> Corpus:
    corpus = Corpus()
    for name, src in [
        ("alpha", "long main(long n) { return n + 1; }"),
        ("beta", "long main(long n) { return n * 2; }"),
        ("gamma", "long main(long n) { return n - 3; }"),
    ]:
        corpus.binaries.append(CorpusBinary(
            name=name, directory="bin",
            binary=compile_source(src, name=name), expected="lifted"))
    return corpus


def _started(seq=0):
    return {"kind": "corpus_started", "seq": seq, "ts": 1.0,
            "total": 3, "scale": 1, "jobs": 1}


# -- per-event validation --------------------------------------------------

def test_valid_events_pass():
    validate_progress_obj(_started())
    validate_progress_obj({"kind": "task_started", "seq": 1, "ts": 1.0,
                           "task": "alpha", "queue_depth": 2})
    validate_progress_obj({"kind": "task_finished", "seq": 2, "ts": 1.0,
                           "task": "alpha", "outcome": "lifted", "done": 1,
                           "total": 3, "instructions": 10, "seconds": 0.5,
                           "instrs_total": 10, "instrs_per_second": 20.0,
                           "queue_depth": 1})
    validate_progress_obj({"kind": "corpus_finished", "seq": 3, "ts": 1.0,
                           "done": 3, "total": 3, "instrs_total": 30,
                           "seconds": 1.5, "instrs_per_second": 20.0})


@pytest.mark.parametrize("mutate,message", [
    (lambda e: e.update(kind="bogus"), "unknown progress event kind"),
    (lambda e: e.pop("total"), "missing field 'total'"),
    (lambda e: e.update(surprise=1), "unexpected fields"),
    (lambda e: e.update(total="3"), "has type str"),
    (lambda e: e.update(total=True), "has type bool"),
    (lambda e: e.update(seq=-1), "seq must be >= 0"),
])
def test_malformed_events_are_rejected(mutate, message):
    event = _started()
    mutate(event)
    with pytest.raises(ValueError, match=message):
        validate_progress_obj(event)


def test_non_dict_is_rejected():
    with pytest.raises(ValueError, match="must be an object"):
        validate_progress_obj([1, 2, 3])


def test_unknown_outcome_is_rejected():
    event = {"kind": "task_finished", "seq": 0, "ts": 1.0, "task": "a",
             "outcome": "exploded", "done": 1, "total": 1, "instructions": 1,
             "seconds": 0.1, "instrs_total": 1, "instrs_per_second": 10.0,
             "queue_depth": 0}
    with pytest.raises(ValueError, match="outcome 'exploded'"):
        validate_progress_obj(event)
    # The schema's outcomes mirror the runner's FunctionRecord outcomes.
    assert "lifted" in TASK_OUTCOMES and "timeout" in TASK_OUTCOMES


def test_every_kind_has_a_schema():
    assert set(PROGRESS_EVENT_KINDS) == {
        "corpus_started", "task_started", "task_finished", "corpus_finished",
        # Job-level heartbeats emitted by the repro serve daemon.
        "job_queued", "job_started", "job_retried", "job_finished",
    }


# -- serve job-event kinds -------------------------------------------------

def _job_queued(**over):
    event = {"kind": "job_queued", "seq": 0, "ts": 1.0, "job": "j-1",
             "tenant": "default", "job_kind": "lift", "priority": 0,
             "queue_depth": 1}
    event.update(over)
    return event


def test_job_queued_validates():
    validate_progress_obj(_job_queued())


def test_job_finished_rejects_nonterminal_state():
    event = {"kind": "job_finished", "seq": 3, "ts": 1.0, "job": "j-1",
             "state": "running", "seconds": 0.5, "source": "worker"}
    with pytest.raises(ValueError, match="state"):
        validate_progress_obj(event)


def test_job_finished_rejects_unknown_source():
    event = {"kind": "job_finished", "seq": 3, "ts": 1.0, "job": "j-1",
             "state": "done", "seconds": 0.5, "source": "psychic"}
    with pytest.raises(ValueError, match="source"):
        validate_progress_obj(event)


def test_job_retried_requires_reason():
    event = {"kind": "job_retried", "seq": 2, "ts": 1.0, "job": "j-1",
             "attempt": 1, "delay": 0.25}
    with pytest.raises(ValueError, match="reason"):
        validate_progress_obj(event)


def test_job_events_reject_bool_priority():
    with pytest.raises(ValueError, match="priority"):
        validate_progress_obj(_job_queued(priority=True))


# -- stream invariants -----------------------------------------------------

def test_stream_rejects_seq_gaps():
    lines = [json.dumps(_started()),
             json.dumps({"kind": "task_started", "seq": 2, "ts": 1.0,
                         "task": "a", "queue_depth": 0})]
    with pytest.raises(ValueError, match="seq 2 != expected 1"):
        validate_progress_jsonl("\n".join(lines))


def test_stream_rejects_misplaced_lifecycle_events():
    late_start = [json.dumps({"kind": "task_started", "seq": 0, "ts": 1.0,
                              "task": "a", "queue_depth": 0}),
                  json.dumps(_started(seq=1))]
    with pytest.raises(ValueError, match="corpus_started not first"):
        validate_progress_jsonl("\n".join(late_start))


def test_stream_rejects_non_json_lines():
    with pytest.raises(ValueError, match="not JSON"):
        validate_progress_jsonl("{nope}")


# -- the emitter -----------------------------------------------------------

def test_emitter_produces_a_valid_stream_via_text_sink():
    sink = io.StringIO()
    emitter = ProgressEmitter(sink)
    emitter.corpus_started(total=2, scale=1, jobs=1)
    emitter.task_started("alpha", queue_depth=1)
    emitter.task_finished("alpha", outcome="lifted", instructions=100,
                          seconds=0.2, queue_depth=1)
    emitter.task_started("beta", queue_depth=0)
    emitter.task_finished("beta", outcome="timeout", instructions=0,
                          seconds=1.0, queue_depth=0)
    emitter.corpus_finished()
    text = sink.getvalue()
    assert validate_progress_jsonl(text) == 6
    events = list(iter_progress_objects(text))
    finished = [e for e in events if e["kind"] == "task_finished"]
    # Cumulative counters march forward.
    assert [e["done"] for e in finished] == [1, 2]
    assert finished[-1]["instrs_total"] == 100
    assert events[-1]["kind"] == "corpus_finished"
    assert events[-1]["done"] == 2


def test_emitter_accepts_a_callable_sink():
    seen: list[dict] = []
    emitter = ProgressEmitter(seen.append)
    emitter.corpus_started(total=0, scale=1, jobs=1)
    emitter.corpus_finished()
    assert [e["kind"] for e in seen] == ["corpus_started", "corpus_finished"]
    assert [e["seq"] for e in seen] == [0, 1]


def test_as_emitter_coercions():
    assert as_emitter(None) is None
    emitter = ProgressEmitter(lambda e: None)
    assert as_emitter(emitter) is emitter
    assert isinstance(as_emitter(io.StringIO()), ProgressEmitter)
    assert isinstance(as_emitter(lambda e: None), ProgressEmitter)


# -- the runner hook -------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_run_corpus_emits_a_valid_heartbeat_stream(tiny_corpus, jobs):
    sink = io.StringIO()
    report = run_corpus(corpus=tiny_corpus, jobs=jobs, progress=sink)
    text = sink.getvalue()
    count = validate_progress_jsonl(text)
    # started + (start, finish) per task + finished.
    assert count == 2 + 2 * len(report.records)
    events = list(iter_progress_objects(text))
    assert events[0]["kind"] == "corpus_started"
    assert events[0]["total"] == 3 and events[0]["jobs"] == jobs
    finished = [e for e in events if e["kind"] == "task_finished"]
    assert {e["task"] for e in finished} == {"alpha", "beta", "gamma"}
    assert all(e["outcome"] == "lifted" for e in finished)
    assert events[-1]["kind"] == "corpus_finished"
    assert events[-1]["done"] == 3
    assert events[-1]["instrs_total"] == sum(r.instructions
                                             for r in report.records)


def test_progress_does_not_change_the_report(tiny_corpus):
    plain = run_corpus(corpus=tiny_corpus)
    with_progress = run_corpus(corpus=tiny_corpus, progress=lambda e: None)
    assert plain.canonical_json() == with_progress.canonical_json()
