"""The lint engine, the builtin rules on seeded-bug binaries, and the
``python -m repro lint`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import lift
from repro.analysis import (
    Diagnostic,
    all_rules,
    render_json,
    render_text,
    run_lint,
    to_sarif,
)
from repro.corpus import ALL_LINTBUGS
from repro.elf import BinaryBuilder, save_binary
from repro.isa import Imm, Mem, abs32, abs64
from repro.minicc import compile_source

CLEAN = """
long helper(long x) { return x * 3 + 1; }
long main(long a, long b) {
  long acc = 0;
  for (long i = 0; i < a; i = i + 1) acc = acc + helper(b + i);
  return acc;
}
"""

EXPECTED_RULES = {
    "uninit-read", "dead-store", "unreachable-block", "write-below-rsp",
    "callee-saved-clobber", "rop-gadget-surface", "escaping-stack-pointer",
}


@pytest.fixture(scope="module")
def clean_result():
    return lift(compile_source(CLEAN, name="clean"))


def test_builtin_rules_registered():
    assert EXPECTED_RULES <= set(all_rules())


def test_clean_binary_lints_clean(clean_result):
    report = run_lint(clean_result)
    assert report.findings == []
    assert report.exit_code == 0
    assert "clean" in render_text(report)


def test_diagnostic_severity_validated():
    with pytest.raises(ValueError):
        Diagnostic(rule="x", severity="fatal", addr=None, message="m")


@pytest.mark.parametrize("name", sorted(ALL_LINTBUGS))
def test_seeded_bug_triggers_expected_rule(name):
    builder, expected_rule = ALL_LINTBUGS[name]
    report = run_lint(lift(builder()))
    hits = report.by_rule(expected_rule)
    assert hits, f"{name} did not trigger {expected_rule}"
    assert report.exit_code == 1


def test_seeded_findings_are_deterministic():
    builder, expected_rule = ALL_LINTBUGS["uninit_read"]
    first = run_lint(lift(builder()))
    second = run_lint(lift(builder()))
    assert [str(d) for d in first.diagnostics] == \
        [str(d) for d in second.diagnostics]
    (finding,) = first.by_rule(expected_rule)
    assert finding.severity == "error"
    assert finding.addr == first.diagnostics[0].addr


def test_rejected_lift_still_lintable():
    builder, expected_rule = ALL_LINTBUGS["callee_saved_clobber"]
    result = lift(builder())
    assert not result.verified
    report = run_lint(result)
    # The verification error surfaces as an error diagnostic...
    assert any(d.rule.startswith("verify-") and d.severity == "error"
               for d in report.diagnostics)
    # ...and the rule localizes the clobbering definition.
    (finding,) = report.by_rule(expected_rule)
    assert "rbx" in finding.message
    assert "0x401000" in finding.message


def test_rule_selection_and_unknown_rule(clean_result):
    report = run_lint(clean_result, rules=["dead-store"])
    assert all(d.rule in ("dead-store",) or d.rule.startswith(("verify-", "lift-"))
               for d in report.diagnostics)
    with pytest.raises(KeyError):
        run_lint(clean_result, rules=["no-such-rule"])


def test_write_below_rsp_suppressed_for_proven_leaf_red_zone():
    builder = BinaryBuilder("leaf_redzone")
    t = builder.text
    t.label("main")
    t.emit("mov", Mem(64, base="rsp", disp=-8), "rdi")
    t.emit("mov", "rax", Mem(64, base="rsp", disp=-8))
    t.emit("ret")
    report = run_lint(lift(builder.build(entry="main")))
    # Red-zone use of the *proven own frame* in a leaf is the legal SysV
    # idiom: the pointer analysis discharges the old info note entirely.
    assert not report.by_rule("write-below-rsp")
    assert report.exit_code == 0


def test_write_below_rsp_still_notes_beyond_red_zone_in_leaf():
    builder = BinaryBuilder("leaf_deep")
    t = builder.text
    t.label("main")
    t.emit("mov", Mem(64, base="rsp", disp=-136), "rdi")
    t.emit("mov", "rax", Mem(64, base="rsp", disp=-136))
    t.emit("ret")
    report = run_lint(lift(builder.build(entry="main")))
    (finding,) = report.by_rule("write-below-rsp")
    # Own frame or not, 136 bytes is past the red zone: keep the note.
    assert finding.severity == "info"
    assert "beyond the red zone" in finding.message
    assert report.exit_code == 0


def test_escaping_stack_pointer_to_extern_callee_is_info():
    # Passing &local to an *external* callee is ordinary C (`f(&local)`):
    # noted (the summary must stay conservative), never a finding.
    # Internal callees are tracked precisely and do not count as escapes.
    builder = BinaryBuilder("pass_local")
    builder.extern("puts")
    t = builder.text
    t.label("main")
    t.emit("push", "rbx")
    t.emit("lea", "rdi", Mem(64, base="rsp", disp=-8))
    t.emit("call", "puts")
    t.emit("pop", "rbx")
    t.emit("ret")
    report = run_lint(lift(builder.build(entry="main")))
    escapes = report.by_rule("escaping-stack-pointer")
    assert escapes and all(d.severity == "info" for d in escapes)
    assert all("puts" in d.message for d in escapes)
    assert report.exit_code == 0


def test_escaping_stack_pointer_sarif_metadata():
    builder, rule = ALL_LINTBUGS["escaping_stack_pointer"]
    sarif = to_sarif(run_lint(lift(builder())))
    rules = {r["id"]: r for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
    assert rule in rules
    assert rules[rule]["shortDescription"]["text"]


def test_push_does_not_trigger_write_below_rsp():
    builder = BinaryBuilder("pushy")
    t = builder.text
    t.label("main")
    t.emit("push", "rbx")
    t.emit("pop", "rbx")
    t.emit("ret")
    report = run_lint(lift(builder.build(entry="main")))
    assert not report.by_rule("write-below-rsp")


def test_rop_gadget_surface_on_overlapping_decode():
    # The Section 2 shape: cmp rax, 0xc3 hides a ret at main+2, and the
    # jump table can be redirected into it (see test_weird_edges).
    builder = BinaryBuilder("weird")
    t = builder.text
    t.label("main")
    t.emit("cmp", "rax", Imm(0xC3, 32))
    t.emit("ja", "out")
    t.emit("movabs", "rcx", abs64("table"))
    t.emit("mov", "rax", Mem(64, base="rcx", index="rax", scale=8))
    t.emit("mov", Mem(64, base="rdi"), "rax")
    t.emit("mov", Mem(64, base="rsi"), abs32("main", addend=2))
    t.emit("jmp", Mem(64, base="rdi"))
    t.label("out")
    t.emit("ret")
    t.label("case0")
    t.emit("mov", "eax", Imm(10, 32))
    t.emit("ret")
    rod = builder.rodata
    rod.label("table")
    for _ in range(0xC4):
        rod.quad(abs64("case0"))
    binary = builder.build(entry="main")
    result = lift(binary, max_targets=4096)
    report = run_lint(result)
    gadgets = report.by_rule("rop-gadget-surface")
    assert gadgets
    # The hidden ret is control flow: a warning, at the mid-instruction
    # address the weird edge jumps to.
    entry = binary.entry
    assert any(d.addr == entry + 2 and d.severity == "warning"
               for d in gadgets)


# -- rendering -----------------------------------------------------------------


def test_sarif_shape_and_levels():
    builder, expected_rule = ALL_LINTBUGS["red_zone_write"]
    report = run_lint(lift(builder()))
    sarif = to_sarif(report)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert expected_rule in rule_ids
    result = next(r for r in run["results"]
                  if r["ruleId"] == expected_rule)
    assert result["level"] == "warning"
    addr = result["locations"][0]["physicalLocation"]["address"]
    assert addr["absoluteAddress"] == 0x401000
    # render_json is just the serialized form.
    assert json.loads(render_json(report)) == sarif


# -- the CLI -------------------------------------------------------------------


@pytest.fixture()
def clean_path(tmp_path):
    path = tmp_path / "clean.elf"
    save_binary(compile_source(CLEAN, name="clean"), str(path))
    return str(path)


@pytest.fixture()
def buggy_path(tmp_path):
    builder, _ = ALL_LINTBUGS["red_zone_write"]
    path = tmp_path / "redzone.elf"
    save_binary(builder(), str(path))
    return str(path)


def test_cli_lint_clean_exits_zero(clean_path, capsys):
    from repro.__main__ import main

    assert main(["lint", clean_path]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_lint_findings_exit_one(buggy_path, capsys):
    from repro.__main__ import main

    assert main(["lint", buggy_path]) == 1
    out = capsys.readouterr().out
    assert "write-below-rsp" in out


def test_cli_lint_json(buggy_path, capsys):
    from repro.__main__ import main

    assert main(["lint", buggy_path, "--json"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["runs"][0]["results"]


def test_cli_lint_missing_file_exits_two(tmp_path, capsys):
    from repro.__main__ import main

    assert main(["lint", str(tmp_path / "nope.elf")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_lint_unknown_rule_exits_two(clean_path, capsys):
    from repro.__main__ import main

    assert main(["lint", clean_path, "--rule", "bogus"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_cli_lint_single_rule(buggy_path, capsys):
    from repro.__main__ import main

    assert main(["lint", buggy_path, "--rule", "write-below-rsp"]) == 1
    out = capsys.readouterr().out
    assert "write-below-rsp" in out
