"""Symbolic instruction semantics τ and the step function of Definition 4.2."""

from repro.semantics.events import (
    CallEvent,
    Event,
    RetEvent,
    TerminalEvent,
    UnknownWriteEvent,
)
from repro.semantics.defuse import DefUse, MemEffect, def_use
from repro.semantics.memory import havoc_non_stack, read_region, write_region
from repro.semantics.state import (
    LiftContext,
    NameGen,
    SymState,
    initial_state,
    join_states,
)
from repro.semantics.tau import Successor, UnsupportedInstruction, step

__all__ = [
    "CallEvent", "Event", "RetEvent", "TerminalEvent", "UnknownWriteEvent",
    "DefUse", "MemEffect", "def_use",
    "havoc_non_stack", "read_region", "write_region",
    "LiftContext", "NameGen", "SymState", "initial_state", "join_states",
    "Successor", "UnsupportedInstruction", "step",
]
