"""Lift-provenance: *why* did the lifter annotate, reject, or time out?

The paper's Section 5.3 explains every failure narratively ("the stack
pointer becomes unknowable after the probe…"); this module reconstructs
that narrative mechanically from the trace.  For each annotation,
verification error (including timeouts), and unresolved indirect branch in
a :class:`~repro.hoare.lifter.LiftResult`, it walks the event ring buffer
and assembles the **causal chain**: the instruction at the causing address,
the SMT verdicts the decision consumed, the predicate joins that shaped the
state, and the enqueue that brought the state there.

Works best with ``sampling=1`` (the ``python -m repro trace`` default):
sampled-away SMT cache hits cannot appear in a chain.  Chains degrade
gracefully — a missing instruction or verdict is reported as absent, never
invented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.tracer import Event


class TruncatedTraceError(RuntimeError):
    """Raised when provenance is asked to reconstruct chains from a trace
    whose ring wrapped (``tracer.dropped > 0``).

    A truncated stream silently loses the *oldest* events — exactly the
    early joins and SMT verdicts a chain is built from — so reconstruction
    would fabricate confident-looking but incomplete narratives.  Callers
    should re-run with a larger capacity instead (``repro trace
    --capacity``)."""


#: Event kinds that can support a causal chain, and how many of each to
#: keep (most recent first).
_SUPPORT_KINDS = {
    "smt.query": 4,
    "join": 2,
    "join.widen": 2,
    "state.enqueue": 1,
    "state.explore": 1,
}


@dataclass
class Cause:
    """One supporting event in a causal chain."""

    kind: str
    addr: int | None
    detail: dict[str, Any]

    def describe(self) -> str:
        where = f"@{self.addr:#x}" if self.addr is not None else "@?"
        if self.kind == "smt.query":
            verdict = self.detail.get("verdict", "?")
            cached = " (cached)" if self.detail.get("cached") else ""
            assumed = self.detail.get("assumptions")
            suffix = f" under {assumed}" if assumed else ""
            return (f"SMT {self.detail.get('op', 'decide')} {where}: "
                    f"{self.detail.get('r0')} vs {self.detail.get('r1')} "
                    f"-> {verdict}{suffix}{cached}")
        if self.kind in ("join", "join.widen"):
            verb = "widened" if self.kind == "join.widen" else "joined"
            return (f"state {verb} {where} "
                    f"(join #{self.detail.get('count', '?')})")
        if self.kind == "state.enqueue":
            return f"state enqueued for {where} (queue={self.detail.get('queue', '?')})"
        if self.kind == "state.explore":
            return f"state explored {where} (#{self.detail.get('explored', '?')})"
        return f"{self.kind} {where}"


@dataclass
class CauseChain:
    """The reconstructed provenance of one lift outcome."""

    subject_kind: str          # "annotation" | "error"
    kind: str                  # e.g. "unresolved-jump", "return-address"
    addr: int
    subject: str               # str(annotation) / str(error)
    instruction: str | None    # disassembly at addr, if decoded
    causes: list[Cause] = field(default_factory=list)

    @property
    def smt_verdicts(self) -> list[Cause]:
        return [c for c in self.causes if c.kind == "smt.query"]

    def lines(self) -> list[str]:
        head = f"{self.subject_kind} {self.kind} @{self.addr:#x}: {self.subject}"
        body = []
        if self.instruction is not None:
            body.append(f"instruction: {self.instruction}")
        else:
            body.append("instruction: <not decoded>")
        if self.causes:
            body.extend(cause.describe() for cause in self.causes)
        else:
            body.append("no supporting events in the trace buffer "
                        "(evicted or sampled away)")
        return [head] + ["  " + line for line in body]


@dataclass
class ProvenanceReport:
    """Causal chains for every annotation and error of one lift."""

    binary: str
    entry: int
    verified: bool
    chains: list[CauseChain] = field(default_factory=list)

    def render(self) -> str:
        flag = "OK" if self.verified else "REJECTED"
        out = [f"Provenance report: {self.binary}@{self.entry:#x} ({flag})"]
        if not self.chains:
            out.append("  clean lift: no annotations, no errors")
        for chain in self.chains:
            out.append("")
            out.extend(chain.lines())
        return "\n".join(out)


def _supporting_causes(events_at: list[Event],
                       before_index: int) -> list[Cause]:
    """The most recent supporting events (per kind budget) preceding the
    subject, most recent first."""
    budget = dict(_SUPPORT_KINDS)
    causes: list[Cause] = []
    for event in reversed(events_at[:before_index]):
        remaining = budget.get(event.kind, 0)
        if remaining <= 0:
            continue
        budget[event.kind] = remaining - 1
        causes.append(Cause(event.kind, event.addr, dict(event.detail)))
    return causes


def build_provenance(result, events: Iterable[Event],
                     dropped: int = 0) -> ProvenanceReport:
    """Reconstruct causal chains for *result* from its event stream.

    *result* is a :class:`~repro.hoare.lifter.LiftResult` (duck-typed to
    keep this module import-light): ``annotations``, ``errors``,
    ``graph.instructions``, ``binary.name``, ``entry``, ``verified``.

    *dropped* is the tracer's ring-overflow count for this capture; a
    nonzero value raises :class:`TruncatedTraceError` — loud refusal beats
    quietly truncated causal chains.
    """
    if dropped:
        raise TruncatedTraceError(
            f"trace ring wrapped: {dropped} events dropped; causal chains "
            "would be built from a truncated stream — re-run with a larger "
            "capacity (repro trace --capacity)")
    by_addr: dict[int | None, list[Event]] = {}
    for event in events:
        by_addr.setdefault(event.addr, []).append(event)

    def chain_for(subject_kind: str, kind: str, addr: int,
                  subject: str) -> CauseChain:
        instr = result.graph.instructions.get(addr)
        events_at = by_addr.get(addr, [])
        # Anchor at the subject's own trace event when present (the
        # annotation/reject emitted for this subject); support events are
        # those before it.  Fall back to the whole per-addr stream.
        anchor = len(events_at)
        for index, event in enumerate(events_at):
            if event.kind in ("annotation", "reject") \
                    and event.detail.get("kind") == kind:
                anchor = index
                break
        return CauseChain(
            subject_kind=subject_kind, kind=kind, addr=addr, subject=subject,
            instruction=None if instr is None else str(instr),
            causes=_supporting_causes(events_at, anchor),
        )

    report = ProvenanceReport(binary=result.binary.name, entry=result.entry,
                              verified=result.verified)
    for annotation in result.annotations:
        report.chains.append(chain_for(
            "annotation", annotation.kind, annotation.addr, str(annotation)
        ))
    for error in result.errors:
        report.chains.append(chain_for(
            "error", error.kind, error.addr, str(error)
        ))
    return report
