"""Benchmark: the scalability claim — lifting cost grows linearly in code.

The paper lifts 399 771 instructions because joining keeps the state count
(and hence work) linear in code size.  We lift the corpus at scales 1 and
2 and assert: instruction counts double, states stay ≈ instructions, and
wall time grows roughly linearly (sub-quadratically at worst)."""

from __future__ import annotations

import pytest

from repro.eval.scaling import format_scaling, run_scaling


@pytest.fixture(scope="module")
def scaling_points():
    return run_scaling(scales=(1, 2), timeout_seconds=10.0)


def test_scaling_benchmark(benchmark, scaling_points):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(format_scaling(scaling_points))


def test_instructions_scale_linearly(scaling_points):
    first, second = scaling_points
    ratio = second.instructions / first.instructions
    # Template parameters vary slightly with the per-unit name suffix, so
    # "double the units" is approximately (not exactly) double the code.
    assert 1.5 <= ratio <= 2.5, ratio


def test_states_stay_proportional_to_instructions(scaling_points):
    for point in scaling_points:
        assert point.states <= point.instructions * 1.10


def test_time_grows_subquadratically(scaling_points):
    first, second = scaling_points
    if first.seconds < 1.0:
        pytest.skip("corpus too fast to measure scaling reliably")
    cost_ratio = second.seconds / first.seconds
    assert cost_ratio < 4.0, (
        f"2x code cost {cost_ratio:.1f}x time — worse than quadratic"
    )
