"""Symbolic expression language (Section 3.1): AST, simplifier, evaluation."""

from repro.expr.ast import (
    App,
    Const,
    Deref,
    Expr,
    FlagRef,
    MASK64,
    RegRef,
    Var,
    const,
    is_constant_expr,
    mask,
    to_signed,
    var,
    variables_of,
)
from repro.expr.concrete import EvalEnv, EvalError, evaluate
from repro.expr.subst import subst_vars, substitute
from repro.expr import simplify

__all__ = [
    "App", "Const", "Deref", "Expr", "FlagRef", "MASK64", "RegRef", "Var",
    "const", "is_constant_expr", "mask", "to_signed", "var", "variables_of",
    "EvalEnv", "EvalError", "evaluate", "subst_vars", "substitute", "simplify",
]
