"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from repro.minicc import cast as c
from repro.minicc.lexer import Token, tokenize


class ParseError(SyntaxError):
    pass


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            want = text or kind
            raise ParseError(
                f"line {actual.line}: expected {want!r}, found {actual.text!r}"
            )
        return token

    # -- types ---------------------------------------------------------------------
    def at_type(self) -> bool:
        return self.peek().kind == "keyword" and self.peek().text in (
            "int", "long", "char", "void"
        )

    def parse_type(self) -> c.CType:
        base = self.expect("keyword").text
        pointers = 0
        while self.accept("symbol", "*"):
            pointers += 1
        return c.CType(base, pointers)

    # -- program ---------------------------------------------------------------------
    def parse_program(self) -> c.Program:
        program = c.Program()
        while not self.at("eof"):
            if self.accept("keyword", "extern"):
                ctype = self.parse_type()
                name = self.expect("ident").text
                self.expect("symbol", "(")
                while not self.accept("symbol", ")"):
                    self.advance()
                self.expect("symbol", ";")
                program.externs.append(c.Extern(ctype, name))
                continue
            ctype = self.parse_type()
            name = self.expect("ident").text
            if self.at("symbol", "("):
                program.functions.append(self.parse_function(ctype, name))
            else:
                program.globals.append(self.parse_global(ctype, name))
        return program

    def parse_function(self, ctype: c.CType, name: str) -> c.Function:
        self.expect("symbol", "(")
        params: list[c.Param] = []
        if not self.at("symbol", ")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").text
                params.append(c.Param(ptype, pname))
                if not self.accept("symbol", ","):
                    break
        self.expect("symbol", ")")
        body = self.parse_block()
        return c.Function(ctype, name, params, body)

    def parse_global(self, ctype: c.CType, name: str) -> c.Global:
        array = None
        if self.accept("symbol", "["):
            array = self.expect("num").value
            self.expect("symbol", "]")
        init = None
        if self.accept("symbol", "="):
            if self.accept("symbol", "{"):
                init = []
                while not self.accept("symbol", "}"):
                    sign = -1 if self.accept("symbol", "-") else 1
                    init.append(sign * self.expect("num").value)
                    self.accept("symbol", ",")
            else:
                sign = -1 if self.accept("symbol", "-") else 1
                init = sign * self.expect("num").value
        self.expect("symbol", ";")
        return c.Global(ctype, name, array, init)

    # -- statements ----------------------------------------------------------------------
    def parse_block(self) -> c.Block:
        self.expect("symbol", "{")
        statements = []
        while not self.accept("symbol", "}"):
            statements.append(self.parse_statement())
        return c.Block(statements)

    def parse_statement(self) -> c.Stmt:
        if self.at("symbol", "{"):
            return self.parse_block()
        if self.accept("keyword", "if"):
            self.expect("symbol", "(")
            cond = self.parse_expr()
            self.expect("symbol", ")")
            then = self.parse_statement()
            otherwise = None
            if self.accept("keyword", "else"):
                otherwise = self.parse_statement()
            return c.If(cond, then, otherwise)
        if self.accept("keyword", "while"):
            self.expect("symbol", "(")
            cond = self.parse_expr()
            self.expect("symbol", ")")
            return c.While(cond, self.parse_statement())
        if self.accept("keyword", "for"):
            self.expect("symbol", "(")
            init = None
            if not self.at("symbol", ";"):
                init = (
                    self.parse_decl()
                    if self.at_type()
                    else c.ExprStmt(self.parse_expr())
                )
                if isinstance(init, c.Decl):
                    return self._finish_for(init)
            self.expect("symbol", ";")
            return self._finish_for(init, consumed_semi=True)
        if self.accept("keyword", "return"):
            value = None
            if not self.at("symbol", ";"):
                value = self.parse_expr()
            self.expect("symbol", ";")
            return c.Return(value)
        if self.accept("keyword", "break"):
            self.expect("symbol", ";")
            return c.Break()
        if self.accept("keyword", "continue"):
            self.expect("symbol", ";")
            return c.Continue()
        if self.accept("keyword", "switch"):
            return self.parse_switch()
        if self.at_type():
            return self.parse_decl()
        expr = self.parse_expr()
        self.expect("symbol", ";")
        return c.ExprStmt(expr)

    def _finish_for(self, init, consumed_semi: bool = False) -> c.For:
        # `init` is a Decl (whose parse consumed the ';') or an ExprStmt.
        if not consumed_semi and isinstance(init, c.ExprStmt):
            self.expect("symbol", ";")
        cond = None
        if not self.at("symbol", ";"):
            cond = self.parse_expr()
        self.expect("symbol", ";")
        step = None
        if not self.at("symbol", ")"):
            step = self.parse_expr()
        self.expect("symbol", ")")
        return c.For(init, cond, step, self.parse_statement())

    def parse_decl(self) -> c.Decl:
        ctype = self.parse_type()
        name = self.expect("ident").text
        array = None
        if self.accept("symbol", "["):
            array = self.expect("num").value
            self.expect("symbol", "]")
        init = None
        if self.accept("symbol", "="):
            init = self.parse_expr()
        self.expect("symbol", ";")
        return c.Decl(ctype, name, array, init)

    def parse_switch(self) -> c.Switch:
        self.expect("symbol", "(")
        scrutinee = self.parse_expr()
        self.expect("symbol", ")")
        self.expect("symbol", "{")
        cases: list[c.Case] = []
        while not self.accept("symbol", "}"):
            if self.accept("keyword", "case"):
                sign = -1 if self.accept("symbol", "-") else 1
                value = sign * self.expect("num").value
                self.expect("symbol", ":")
                cases.append(c.Case(value, []))
            elif self.accept("keyword", "default"):
                self.expect("symbol", ":")
                cases.append(c.Case(None, []))
            else:
                if not cases:
                    raise ParseError("statement before first case label")
                cases[-1].body.append(self.parse_statement())
        return c.Switch(scrutinee, cases)

    # -- expressions (precedence climbing) ----------------------------------------------
    def parse_expr(self) -> c.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> c.Expr:
        left = self.parse_logical_or()
        if self.accept("symbol", "="):
            value = self.parse_assignment()
            return c.Assign(left, value)
        return left

    def _binary_level(self, operators: tuple[str, ...], next_level):
        expr = next_level()
        while self.peek().kind == "symbol" and self.peek().text in operators:
            op = self.advance().text
            expr = c.Binary(op, expr, next_level())
        return expr

    def parse_logical_or(self) -> c.Expr:
        return self._binary_level(("||",), self.parse_logical_and)

    def parse_logical_and(self) -> c.Expr:
        return self._binary_level(("&&",), self.parse_bitor)

    def parse_bitor(self) -> c.Expr:
        return self._binary_level(("|",), self.parse_bitxor)

    def parse_bitxor(self) -> c.Expr:
        return self._binary_level(("^",), self.parse_bitand)

    def parse_bitand(self) -> c.Expr:
        return self._binary_level(("&",), self.parse_equality)

    def parse_equality(self) -> c.Expr:
        return self._binary_level(("==", "!="), self.parse_relational)

    def parse_relational(self) -> c.Expr:
        return self._binary_level(("<", "<=", ">", ">="), self.parse_shift)

    def parse_shift(self) -> c.Expr:
        return self._binary_level(("<<", ">>"), self.parse_additive)

    def parse_additive(self) -> c.Expr:
        return self._binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> c.Expr:
        return self._binary_level(("*", "/", "%"), self.parse_unary)

    def parse_unary(self) -> c.Expr:
        for op in ("-", "!", "~", "*", "&"):
            if self.accept("symbol", op):
                return c.Unary(op, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> c.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("symbol", "["):
                index = self.parse_expr()
                self.expect("symbol", "]")
                expr = c.Index(expr, index)
            elif self.accept("symbol", "("):
                args = []
                if not self.at("symbol", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("symbol", ","):
                            break
                self.expect("symbol", ")")
                expr = c.Call(expr, args)
            else:
                return expr

    def parse_primary(self) -> c.Expr:
        if self.at("num"):
            return c.Num(self.advance().value)
        if self.at("ident"):
            return c.Name(self.advance().text)
        if self.accept("symbol", "("):
            expr = self.parse_expr()
            self.expect("symbol", ")")
            return expr
        token = self.peek()
        raise ParseError(f"line {token.line}: unexpected {token.text!r}")


def parse(source: str) -> c.Program:
    return Parser(source).parse_program()
