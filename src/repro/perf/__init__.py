"""Performance layer: counters, cache registry, and the benchmark harness.

Every memoization table in the hot path (expression interning, the
canonical-sum memo, ``linearize``, the SMT verdict cache) registers itself
here so that:

* :func:`reset_caches` gives tests and the benchmark harness a clean slate
  (no cross-test bleed through interning tables or memos);
* :func:`cache_stats` aggregates hit/miss statistics for the ``bench``
  report without each module exposing its own accessors.
"""

from __future__ import annotations

from typing import Callable

from repro.perf.counters import PerfCounters, counters, gated, hit_rate

#: name -> (stats_fn, clear_fn).  stats_fn returns a small dict
#: (e.g. {"hits": h, "misses": m, "size": n}); clear_fn drops the cache.
_REGISTRY: dict[str, tuple[Callable[[], dict], Callable[[], None]]] = {}


def register_cache(name: str, stats_fn: Callable[[], dict],
                   clear_fn: Callable[[], None]) -> None:
    """Register a cache for aggregate stats and global reset."""
    _REGISTRY[name] = (stats_fn, clear_fn)


def register_lru(name: str, cached_fn) -> None:
    """Register a :func:`functools.lru_cache`-wrapped function."""
    def stats() -> dict:
        info = cached_fn.cache_info()
        return {"hits": info.hits, "misses": info.misses,
                "size": info.currsize}

    register_cache(name, stats, cached_fn.cache_clear)


def cache_stats() -> dict[str, dict]:
    """Current statistics of every registered cache."""
    return {name: stats_fn() for name, (stats_fn, _) in sorted(_REGISTRY.items())}


def reset_caches() -> None:
    """Clear every registered cache and zero the global counters.

    Interned expression nodes constructed before the reset stay valid:
    expression equality falls back to a structural check, so a node from
    before the reset still compares equal to its re-interned twin.
    """
    for _, clear_fn in _REGISTRY.values():
        clear_fn()
    counters.reset()


__all__ = [
    "PerfCounters", "counters", "gated", "hit_rate",
    "register_cache", "register_lru", "cache_stats", "reset_caches",
]
