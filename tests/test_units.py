"""Unit tests for helper APIs: registers, resolve, call policy, symbolic
memory access, state joins."""

from __future__ import annotations

import pytest

from repro.elf import BinaryBuilder
from repro.expr import Const, Deref, Var, const, simplify as s, var
from repro.isa import Imm, Mem, insn
from repro.isa.registers import (
    CALLEE_SAVED,
    family_of,
    is_register,
    reg_name,
    reg_number,
    reg_width,
    with_width,
)
from repro.hoare.calls import (
    after_call_state,
    call_obligation,
    callee_initial_state,
    is_concurrency_external,
    is_terminating_external,
)
from repro.hoare.resolve import (
    is_return_symbol,
    resolve_rip,
    return_symbol,
    symbol_entry,
)
from repro.semantics import (
    LiftContext,
    havoc_non_stack,
    initial_state,
    join_states,
    read_region,
    write_region,
)
from repro.semantics.state import states_equal
from repro.smt.solver import Region


# -- registers -------------------------------------------------------------------

def test_register_tables_roundtrip():
    for name in ("rax", "eax", "ax", "al", "r13", "r13d", "r13w", "r13b"):
        assert is_register(name)
        number, width = reg_number(name), reg_width(name)
        assert reg_name(number, width) == name
    assert not is_register("xmm0")
    assert family_of("r9d") == "r9"
    assert with_width("rdx", 8) == "dl"
    assert len(CALLEE_SAVED) == 6


# -- return symbols ----------------------------------------------------------------

def test_return_symbols():
    symbol = return_symbol(0x401234)
    assert is_return_symbol(symbol)
    assert symbol_entry(symbol) == 0x401234
    assert not is_return_symbol(var("rdi0"))


def dummy_binary():
    builder = BinaryBuilder("dummy")
    builder.text.label("main")
    builder.text.emit("ret")
    builder.rodata.label("table")
    builder.rodata.quad(0x401000)
    builder.rodata.quad(0x401000)
    return builder.build(entry="main")


def test_resolve_const():
    binary = dummy_binary()
    resolution = resolve_rip(const(0x401000), None, binary)
    assert resolution.kind == "targets" and resolution.targets == [0x401000]


def test_resolve_return_symbol():
    binary = dummy_binary()
    resolution = resolve_rip(return_symbol(0x401000), None, binary)
    assert resolution.kind == "return"


def test_resolve_fixed_pointer_load():
    from repro.elf import RODATA_BASE

    binary = dummy_binary()
    rip = Deref(const(RODATA_BASE), 8)
    state = initial_state(binary.entry, return_symbol(binary.entry))
    resolution = resolve_rip(rip, state.pred, binary)
    assert resolution.kind == "targets"
    assert resolution.targets == [0x401000]


def test_resolve_unbounded_is_unresolved():
    binary = dummy_binary()
    state = initial_state(binary.entry, return_symbol(binary.entry))
    resolution = resolve_rip(var("rdi0"), state.pred, binary)
    assert resolution.kind == "unresolved"


# -- call policy ----------------------------------------------------------------------

def test_terminating_and_concurrency_classification():
    assert is_terminating_external("exit")
    assert is_terminating_external("__stack_chk_fail")
    assert not is_terminating_external("malloc")
    assert is_concurrency_external("pthread_create")
    assert not is_concurrency_external("pthread_exit")  # terminating instead
    assert not is_concurrency_external("printf")


def test_callee_initial_state_shape():
    state = callee_initial_state(0x402000)
    assert state.rip == 0x402000
    assert state.pred.get_reg("rsp") == var("rsp0")
    assert state.pred.mem_dict()[Region(var("rsp0"), 8)] == \
        return_symbol(0x402000)


def test_after_call_state_cleans():
    ctx = LiftContext(dummy_binary())
    state = callee_initial_state(0x401000)
    continuation = after_call_state(state, 0x401010, ctx)
    pred = continuation.pred
    # Callee-saved survive; caller-saved are gone; rax is a fresh value.
    assert pred.get_reg("rbx") == var("rbx0")
    assert pred.get_reg("r15") == var("r150")
    assert pred.get_reg("rdi") is None
    rax = pred.get_reg("rax")
    assert rax is not None and rax != var("rax0")
    assert pred.rip == Const(0x401010)
    assert continuation.epoch == 1
    assert not continuation.reachable  # parked until the callee returns


def test_call_obligation_lists_frame_regions():
    state = callee_initial_state(0x401000)
    obligation = call_obligation(state, 0x401008, "memcpy")
    assert obligation.callee == "memcpy"
    assert any("RSP0" in span for span in obligation.preserve)


# -- symbolic memory access ---------------------------------------------------------------

def make_ctx_state():
    binary = dummy_binary()
    ctx = LiftContext(binary)
    state = initial_state(binary.entry, return_symbol(binary.entry))
    return ctx, state


def test_write_then_read_region():
    ctx, state = make_ctx_state()
    region = Region(s.sub(var("rsp0"), const(16)), 8)
    pred = write_region(state, region, const(77), ctx)
    state = state.with_pred(pred)
    assert read_region(state, region, ctx) == const(77)


def test_read_unwritten_stack_is_initial_deref():
    ctx, state = make_ctx_state()
    region = Region(s.sub(var("rsp0"), const(64)), 8)
    value = read_region(state, region, ctx)
    assert value == Deref(region.addr, 8)


def test_read_after_havoc_is_fresh():
    ctx, state = make_ctx_state()
    heap = Region(var("rdi0"), 8)
    havocked = havoc_non_stack(state, ctx)
    first = read_region(havocked, heap, ctx)
    second = read_region(havocked, heap, ctx)
    assert isinstance(first, Var) and isinstance(second, Var)
    assert first != second  # no false equality between epochs


def test_havoc_preserves_stack_valuations():
    ctx, state = make_ctx_state()
    slot = Region(s.sub(var("rsp0"), const(8)), 8)
    state = state.with_pred(write_region(state, slot, const(5), ctx))
    havocked = havoc_non_stack(state, ctx)
    assert havocked.pred.mem_dict()[slot] == const(5)
    assert havocked.epoch == 1


# -- joins -------------------------------------------------------------------------------------

def test_join_states_is_identity_on_equal():
    _, state = make_ctx_state()
    joined = join_states(state, state, state.rip)
    assert states_equal(joined, state)


def test_join_states_merges_epoch_and_reachability():
    _, state = make_ctx_state()
    tainted = havoc_non_stack(state, LiftContext(dummy_binary()))
    joined = join_states(state, tainted, state.rip)
    assert joined.epoch == 1
    parked = state.mark_reachable(False)
    joined2 = join_states(parked, state, state.rip)
    assert joined2.reachable
