"""A concrete x86-64 emulator for the supported subset.

This is the black-box transition relation ``→_B`` of Definition 3.1, made
executable.  It serves two purposes:

* **differential testing** — the symbolic semantics τ and the Isabelle-side
  checker are validated against it on random instructions and programs;
* **simulation-soundness checks** — tests drive a concrete execution and
  assert that every step is covered by an edge of the extracted Hoare graph
  (the ``R`` relation of Lemma 4.5).

The emulator is deliberately a *separate implementation* from the symbolic
semantics: shared code would make differential testing vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.elf import Binary
from repro.isa import Instruction, Imm, Mem, Reg, condition_of
from repro.isa.registers import GPR64, family_of, reg_width, with_width

MASK64 = (1 << 64) - 1


def _mask(width: int) -> int:
    return (1 << width) - 1


def _signed(value: int, width: int) -> int:
    sign = 1 << (width - 1)
    value &= _mask(width)
    return value - (1 << width) if value & sign else value


class MachineError(RuntimeError):
    """The emulator cannot continue (bad fetch, unmapped access...)."""


@dataclass
class Memory:
    """Sparse byte-addressed memory initialized lazily from the binary."""

    binary: Binary | None = None
    bytes: dict[int, int] = field(default_factory=dict)

    def read(self, addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            value |= self._read_byte(addr + i) << (8 * i)
        return value

    def _read_byte(self, addr: int) -> int:
        if addr in self.bytes:
            return self.bytes[addr]
        if self.binary is not None:
            section = self.binary.section_at(addr)
            if section is not None:
                return section.data[addr - section.addr]
        return 0

    def write(self, addr: int, value: int, size: int) -> None:
        for i in range(size):
            self.bytes[(addr + i) & MASK64] = (value >> (8 * i)) & 0xFF


#: Default initial stack pointer (16-byte aligned, well above the binary).
STACK_TOP = 0x7FFF_FFF0_0000


@dataclass
class CPU:
    """Concrete machine state + single-step executor."""

    binary: Binary
    regs: dict[str, int] = field(default_factory=dict)
    flags: dict[str, int] = field(default_factory=dict)
    memory: Memory = None  # type: ignore[assignment]
    rip: int = 0
    halted: bool = False
    exit_code: int | None = None
    #: name -> handler(cpu); called when rip enters an external stub.
    extern_handlers: dict[str, Callable[["CPU"], None]] = field(default_factory=dict)
    trace: list[int] = field(default_factory=list)
    max_steps: int = 1_000_000

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = Memory(self.binary)
        for reg in GPR64:
            self.regs.setdefault(reg, 0)
        for flag in ("cf", "zf", "sf", "of", "pf"):
            self.flags.setdefault(flag, 0)
        if not self.rip:
            self.rip = self.binary.entry
        if not self.regs.get("rsp"):
            self.regs["rsp"] = STACK_TOP
            # A sentinel return address so a final `ret` halts cleanly.
            self.memory.write(STACK_TOP, _SENTINEL_RETURN, 8)

    # -- register access respecting sub-register semantics -----------------------
    def get_reg(self, name: str) -> int:
        width = reg_width(name)
        return self.regs[family_of(name)] & _mask(width)

    def set_reg(self, name: str, value: int) -> None:
        family = family_of(name)
        width = reg_width(name)
        value &= _mask(width)
        if width in (64, 32):
            self.regs[family] = value  # 32-bit writes zero-extend
        else:
            old = self.regs[family]
            self.regs[family] = (old & ~_mask(width)) | value

    # -- operand helpers -----------------------------------------------------------
    def mem_address(self, mem: Mem, instr: Instruction) -> int:
        if mem.base == "rip":
            return (instr.end + mem.disp) & MASK64
        addr = mem.disp
        if mem.base:
            addr += self.regs[mem.base]
        if mem.index:
            addr += self.regs[mem.index] * mem.scale
        return addr & MASK64

    def read_operand(self, op, instr: Instruction) -> int:
        if isinstance(op, Reg):
            return self.get_reg(op.name)
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, Mem):
            return self.memory.read(self.mem_address(op, instr), op.width // 8)
        raise MachineError(f"bad operand {op!r}")

    def write_operand(self, op, value: int, instr: Instruction) -> None:
        if isinstance(op, Reg):
            self.set_reg(op.name, value)
        elif isinstance(op, Mem):
            self.memory.write(self.mem_address(op, instr), value, op.width // 8)
        else:
            raise MachineError(f"cannot write operand {op!r}")

    # -- flags ------------------------------------------------------------------------
    def set_flags_arith(self, result: int, width: int, carry: int, overflow: int) -> None:
        result &= _mask(width)
        self.flags["zf"] = int(result == 0)
        self.flags["sf"] = (result >> (width - 1)) & 1
        self.flags["cf"] = carry
        self.flags["of"] = overflow
        self.flags["pf"] = 1 - (bin(result & 0xFF).count("1") & 1)

    def set_flags_logic(self, result: int, width: int) -> None:
        self.set_flags_arith(result, width, carry=0, overflow=0)

    def condition(self, cc: str) -> bool:
        f = self.flags
        table = {
            "o": f["of"], "no": 1 - f["of"],
            "b": f["cf"], "ae": 1 - f["cf"],
            "e": f["zf"], "ne": 1 - f["zf"],
            "be": f["cf"] | f["zf"], "a": 1 - (f["cf"] | f["zf"]),
            "s": f["sf"], "ns": 1 - f["sf"],
            "p": f["pf"], "np": 1 - f["pf"],
            "l": f["sf"] ^ f["of"], "ge": 1 - (f["sf"] ^ f["of"]),
            "le": (f["sf"] ^ f["of"]) | f["zf"],
            "g": 1 - ((f["sf"] ^ f["of"]) | f["zf"]),
        }
        return bool(table[cc])

    # -- stack ---------------------------------------------------------------------------
    def push(self, value: int) -> None:
        self.regs["rsp"] = (self.regs["rsp"] - 8) & MASK64
        self.memory.write(self.regs["rsp"], value, 8)

    def pop(self) -> int:
        value = self.memory.read(self.regs["rsp"], 8)
        self.regs["rsp"] = (self.regs["rsp"] + 8) & MASK64
        return value

    # -- execution --------------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        extern = self.binary.external_name(self.rip)
        if extern is not None:
            handler = self.extern_handlers.get(extern)
            if handler is None:
                raise MachineError(f"no handler for external {extern}")
            handler(self)
            self.rip = self.pop()  # behave like `ret`
            if self.rip == _SENTINEL_RETURN:
                self.halted = True
            return
        if self.rip == _SENTINEL_RETURN:
            self.halted = True
            return
        instr = self.binary.fetch(self.rip)
        self.trace.append(self.rip)
        self.execute(instr)

    def run(self, max_steps: int | None = None) -> int:
        """Run until halt; returns the exit code (rax-based if none set)."""
        budget = max_steps or self.max_steps
        for _ in range(budget):
            if self.halted:
                break
            self.step()
        else:
            raise MachineError("step budget exhausted")
        if self.exit_code is None:
            self.exit_code = self.regs["rax"] & 0xFF
        return self.exit_code

    # -- the instruction interpreter -----------------------------------------------------------
    def execute(self, instr: Instruction) -> None:
        mnemonic = instr.mnemonic
        ops = instr.operands
        next_rip = instr.end

        if mnemonic in ("mov", "movabs"):
            dst, src = ops
            self.write_operand(dst, self.read_operand(src, instr), instr)
        elif mnemonic == "lea":
            dst, src = ops
            self.set_reg(dst.name, self.mem_address(src, instr))
        elif mnemonic in ("add", "sub", "cmp", "adc", "sbb"):
            dst, src = ops
            width = dst.width if isinstance(dst, (Reg, Mem)) else 64
            a = self.read_operand(dst, instr)
            b = self.read_operand(src, instr) & _mask(width)
            carry_in = self.flags["cf"] if mnemonic in ("adc", "sbb") else 0
            if mnemonic in ("add", "adc"):
                total = a + b + carry_in
                result = total & _mask(width)
                carry = int(total > _mask(width))
                overflow = int(
                    _signed(a, width) + _signed(b, width) + carry_in
                    != _signed(result, width)
                )
            else:
                total = a - b - carry_in
                result = total & _mask(width)
                carry = int(total < 0)
                overflow = int(
                    _signed(a, width) - _signed(b, width) - carry_in
                    != _signed(result, width)
                )
            self.set_flags_arith(result, width, carry, overflow)
            if mnemonic != "cmp":
                self.write_operand(dst, result, instr)
        elif mnemonic in ("and", "or", "xor", "test"):
            dst, src = ops
            width = dst.width if isinstance(dst, (Reg, Mem)) else 64
            a = self.read_operand(dst, instr)
            b = self.read_operand(src, instr) & _mask(width)
            result = {"and": a & b, "test": a & b, "or": a | b, "xor": a ^ b}[
                mnemonic
            ] & _mask(width)
            self.set_flags_logic(result, width)
            if mnemonic != "test":
                self.write_operand(dst, result, instr)
        elif mnemonic in ("inc", "dec"):
            (dst,) = ops
            width = dst.width
            a = self.read_operand(dst, instr)
            result = (a + 1 if mnemonic == "inc" else a - 1) & _mask(width)
            # inc/dec preserve CF.
            overflow = int(
                result == (1 << (width - 1)) if mnemonic == "inc"
                else result == _mask(width) >> 1
            )
            carry = self.flags["cf"]
            self.set_flags_arith(result, width, carry, overflow)
            self.write_operand(dst, result, instr)
        elif mnemonic == "neg":
            (dst,) = ops
            width = dst.width
            a = self.read_operand(dst, instr)
            result = (-a) & _mask(width)
            self.set_flags_arith(result, width, carry=int(a != 0),
                                 overflow=int(a == 1 << (width - 1)))
            self.write_operand(dst, result, instr)
        elif mnemonic == "not":
            (dst,) = ops
            width = dst.width
            self.write_operand(dst, ~self.read_operand(dst, instr) & _mask(width), instr)
        elif mnemonic in ("shl", "shr", "sar", "rol", "ror"):
            dst, amount = ops
            width = dst.width
            a = self.read_operand(dst, instr)
            n = self.read_operand(amount, instr) & (63 if width == 64 else 31)
            if n == 0:
                result = a
            elif mnemonic == "shl":
                result = (a << n) & _mask(width)
                self.set_flags_logic(result, width)
                self.flags["cf"] = (a >> (width - n)) & 1 if n <= width else 0
            elif mnemonic == "shr":
                result = (a & _mask(width)) >> n
                self.set_flags_logic(result, width)
                self.flags["cf"] = (a >> (n - 1)) & 1
            elif mnemonic == "sar":
                result = (_signed(a, width) >> n) & _mask(width)
                self.set_flags_logic(result, width)
                self.flags["cf"] = (_signed(a, width) >> (n - 1)) & 1
            elif mnemonic == "rol":
                n %= width
                result = ((a << n) | (a >> (width - n))) & _mask(width) if n else a
            else:  # ror
                n %= width
                result = ((a >> n) | (a << (width - n))) & _mask(width) if n else a
            self.write_operand(dst, result, instr)
        elif mnemonic == "imul":
            if len(ops) == 1:
                width = ops[0].width
                a = _signed(self.get_reg(with_width("rax", width)), width)
                b = _signed(self.read_operand(ops[0], instr), width)
                product = a * b
                self.set_reg(with_width("rax", width), product & _mask(width))
                self.set_reg(with_width("rdx", width),
                             (product >> width) & _mask(width))
            elif len(ops) == 2:
                dst, src = ops
                width = dst.width
                product = _signed(self.read_operand(dst, instr), width) * _signed(
                    self.read_operand(src, instr), width
                )
                self.set_reg(dst.name, product & _mask(width))
            else:
                dst, src, imm = ops
                width = dst.width
                product = _signed(self.read_operand(src, instr), width) * imm.signed
                self.set_reg(dst.name, product & _mask(width))
        elif mnemonic == "mul":
            (src,) = ops
            width = src.width
            product = self.get_reg(with_width("rax", width)) * self.read_operand(
                src, instr
            )
            self.set_reg(with_width("rax", width), product & _mask(width))
            self.set_reg(with_width("rdx", width), (product >> width) & _mask(width))
        elif mnemonic in ("div", "idiv"):
            (src,) = ops
            width = src.width
            divisor = self.read_operand(src, instr)
            hi = self.get_reg(with_width("rdx", width))
            lo = self.get_reg(with_width("rax", width))
            dividend = (hi << width) | lo
            if mnemonic == "idiv":
                dividend = _signed(dividend, width * 2)
                sdivisor = _signed(divisor, width)
                if sdivisor == 0:
                    raise MachineError("integer division by zero")
                quotient = abs(dividend) // abs(sdivisor)
                if (dividend < 0) != (sdivisor < 0):
                    quotient = -quotient
                remainder = dividend - quotient * sdivisor
            else:
                if divisor == 0:
                    raise MachineError("integer division by zero")
                quotient, remainder = divmod(dividend, divisor)
            self.set_reg(with_width("rax", width), quotient & _mask(width))
            self.set_reg(with_width("rdx", width), remainder & _mask(width))
        elif mnemonic == "cdq":
            self.set_reg("edx", _mask(32) if self.get_reg("eax") >> 31 else 0)
        elif mnemonic == "cqo":
            self.regs["rdx"] = MASK64 if self.regs["rax"] >> 63 else 0
        elif mnemonic == "cdqe":
            self.regs["rax"] = _signed(self.get_reg("eax"), 32) & MASK64
        elif mnemonic in ("movzx", "movsx", "movsxd"):
            dst, src = ops
            value = self.read_operand(src, instr)
            if mnemonic != "movzx":
                value = _signed(value, src.width) & _mask(dst.width)
            self.set_reg(dst.name, value)
        elif mnemonic == "xchg":
            dst, src = ops
            a = self.read_operand(dst, instr)
            b = self.read_operand(src, instr)
            self.write_operand(dst, b, instr)
            self.write_operand(src, a, instr)
        elif mnemonic == "push":
            (src,) = ops
            value = self.read_operand(src, instr)
            if isinstance(src, Imm):
                value = _signed(value, src.width) & MASK64
            self.push(value)
        elif mnemonic == "pop":
            (dst,) = ops
            self.write_operand(dst, self.pop(), instr)
        elif mnemonic == "leave":
            self.regs["rsp"] = self.regs["rbp"]
            self.regs["rbp"] = self.pop()
        elif mnemonic == "call":
            (target,) = ops
            self.push(next_rip)
            next_rip = self._branch_target(target, instr)
        elif mnemonic == "jmp":
            (target,) = ops
            next_rip = self._branch_target(target, instr)
        elif mnemonic == "ret":
            next_rip = self.pop()
            if ops:
                self.regs["rsp"] = (self.regs["rsp"] + ops[0].value) & MASK64
            if next_rip == _SENTINEL_RETURN:
                self.halted = True
        elif mnemonic.startswith("j") and condition_of(mnemonic):
            cc = condition_of(mnemonic)
            (target,) = ops
            if self.condition(cc):
                next_rip = (instr.end + target.signed) & MASK64
        elif mnemonic.startswith("set") and condition_of(mnemonic):
            (dst,) = ops
            self.write_operand(dst, int(self.condition(condition_of(mnemonic))), instr)
        elif mnemonic.startswith("cmov") and condition_of(mnemonic):
            dst, src = ops
            if self.condition(condition_of(mnemonic)):
                self.set_reg(dst.name, self.read_operand(src, instr))
            else:
                # A 32-bit cmov still zero-extends the destination.
                if dst.width == 32:
                    self.set_reg(dst.name, self.get_reg(dst.name))
        elif mnemonic in ("movsb", "movsq", "stosb", "stosq",
                          "lodsb", "lodsq") or mnemonic.startswith("rep_"):
            self._string_op(mnemonic)
        elif mnemonic == "nop":
            pass
        elif mnemonic in ("hlt", "ud2", "int3"):
            self.halted = True
        elif mnemonic == "syscall":
            self._syscall()
        else:
            raise MachineError(f"unimplemented instruction {instr}")

        self.rip = next_rip

    def _branch_target(self, target, instr: Instruction) -> int:
        if isinstance(target, Imm):
            return (instr.end + target.signed) & MASK64
        return self.read_operand(target, instr) & MASK64

    def _string_op(self, mnemonic: str) -> None:
        """movs/stos/lods (optionally rep-prefixed); direction flag assumed 0."""
        rep = mnemonic.startswith("rep_")
        base = mnemonic[4:] if rep else mnemonic
        size = 1 if base.endswith("b") else 8
        count = self.regs["rcx"] if rep else 1
        if count > self.max_steps:
            raise MachineError("rep count exceeds step budget")
        for _ in range(count):
            if base.startswith("movs"):
                value = self.memory.read(self.regs["rsi"], size)
                self.memory.write(self.regs["rdi"], value, size)
                self.regs["rsi"] = (self.regs["rsi"] + size) & MASK64
                self.regs["rdi"] = (self.regs["rdi"] + size) & MASK64
            elif base.startswith("stos"):
                value = self.regs["rax"] & _mask(size * 8)
                self.memory.write(self.regs["rdi"], value, size)
                self.regs["rdi"] = (self.regs["rdi"] + size) & MASK64
            else:  # lods
                value = self.memory.read(self.regs["rsi"], size)
                self.set_reg("al" if size == 1 else "rax", value)
                self.regs["rsi"] = (self.regs["rsi"] + size) & MASK64
        if rep:
            self.regs["rcx"] = 0

    def _syscall(self) -> None:
        number = self.regs["rax"]
        if number == 60:  # exit
            self.exit_code = self.regs["rdi"] & 0xFF
            self.halted = True
        else:
            raise MachineError(f"unsupported syscall {number}")


_SENTINEL_RETURN = 0xDEAD_0000_0000


def run_binary(binary: Binary, args: list[int] | None = None,
               extern_handlers=None, max_steps: int = 1_000_000) -> CPU:
    """Convenience runner: create a CPU, pass integer args per the SysV
    convention (rdi, rsi, rdx, rcx, r8, r9), run to completion."""
    cpu = CPU(binary, max_steps=max_steps)
    if extern_handlers:
        cpu.extern_handlers.update(extern_handlers)
    arg_regs = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
    for reg, value in zip(arg_regs, args or []):
        cpu.regs[reg] = value & MASK64
    cpu.run()
    return cpu
