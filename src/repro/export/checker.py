"""Independent validation of Hoare triples (the Step-2 substitute).

The paper discharges each edge's Hoare triple in Isabelle/HOL by symbolic
execution of formally-defined instruction semantics.  Isabelle cannot run
in this environment, so validation is performed by **concrete-witness
replay**: for every edge group ``{P} instr {Q₁ ∨ ... ∨ Qₙ}``,

1. sample concrete machine states satisfying the precondition ``P``
   (rejection sampling guided by the predicate's clauses and the memory
   model's aliasing structure, checked with the formal ``s ⊢ P`` and
   ``s ⊢ M`` judgements);
2. execute the labelled instruction on the *independent* concrete emulator
   (:mod:`repro.machine`, a separate implementation from τ);
3. check that the resulting state satisfies some disjunct ``Qᵢ``.

Trust argument: τ and the emulator share no code; a bug in τ that produces
a wrong postcondition is caught unless it conspires with an identical bug
in the emulator.  Edges that *compose* function contracts (call edges into
context-free callees and external stubs) cannot be replayed concretely and
are reported as ``assumed`` — exactly the proof obligations the paper also
leaves as assumptions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.expr import Const, Deref, EvalEnv, EvalError, Expr, Var, evaluate
from repro.hoare import LiftResult
from repro.hoare.graph import VertexKey
from repro.hoare.resolve import is_return_symbol
from repro.machine import CPU, Memory
from repro.memmodel import MemModel, MemTree, model_holds
from repro.obs.metrics import metrics as _M
from repro.obs.tracer import tracer as _T
from repro.semantics import SymState
from repro.smt.linear import linearize

#: The four triple statuses, in reporting order.
STATUSES = ("proven", "assumed", "untested", "FAILED")

#: Where witness stacks live.
WITNESS_STACK = 0x7FF0_0000_0000
#: Recognizable return-address sentinel.
RETURN_SENTINEL = 0x1D_EAD0_0000
#: Scratch area for symbolic pointer bases.
SCRATCH_BASE = 0x6000_0000


@dataclass
class TripleCheck:
    """Validation outcome for one edge group {P} instr {∨ Q}."""

    src: VertexKey
    instr_addr: int
    status: str          # "proven" | "assumed" | "untested" | "FAILED"
    witnesses: int = 0
    detail: str = ""


@dataclass
class CheckReport:
    checks: list[TripleCheck] = field(default_factory=list)

    def count(self, status: str) -> int:
        return sum(1 for check in self.checks if check.status == status)

    @property
    def proven(self) -> int:
        return self.count("proven")

    @property
    def assumed(self) -> int:
        return self.count("assumed")

    @property
    def untested(self) -> int:
        return self.count("untested")

    @property
    def failed(self) -> int:
        return self.count("FAILED")

    @property
    def all_proven(self) -> bool:
        """Every replayable triple proven; none failed."""
        return self.failed == 0 and self.proven + self.assumed == len(self.checks)

    def status_counts(self) -> dict[str, int]:
        """All four statuses, zero-filled — the rollup/report shape."""
        return {status: self.count(status) for status in STATUSES}

    def summary(self) -> str:
        return (
            f"{len(self.checks)} triples: {self.proven} proven, "
            f"{self.assumed} assumed (call composition), "
            f"{self.untested} untested, {self.failed} FAILED"
        )


class _WitnessSampler:
    """Builds concrete states satisfying a symbolic state."""

    def __init__(self, state: SymState, binary, rng: random.Random):
        self.state = state
        self.binary = binary
        self.rng = rng

    def _collect_vars(self) -> set[Var]:
        out: set[Var] = set()
        pred = self.state.pred
        for _, value in pred.regs:
            out |= {v for v in value.walk() if isinstance(v, Var)}
        for region, value in pred.mem:
            out |= {v for v in region.addr.walk() if isinstance(v, Var)}
            out |= {v for v in value.walk() if isinstance(v, Var)}
        for clause in pred.clauses:
            for side in (clause.lhs, clause.rhs):
                out |= {v for v in side.walk() if isinstance(v, Var)}
        if pred.flags is not None:
            for operand in (pred.flags.a, pred.flags.b):
                if operand is not None:
                    out |= {v for v in operand.walk() if isinstance(v, Var)}
        for region in self.state.model.all_regions():
            out |= {v for v in region.addr.walk() if isinstance(v, Var)}
        return out

    def _alias_groups(self) -> list[list]:
        """Region groups the memory model forces to alias."""
        groups = []

        def visit(tree: MemTree):
            if len(tree.regions) > 1:
                groups.append(sorted(tree.regions, key=str))
            for child in tree.children:
                visit(child)

        for tree in self.state.model.trees:
            visit(tree)
        return groups

    def sample_variables(self) -> dict[str, int] | None:
        variables: dict[str, int] = {}
        rng = self.rng
        pred = self.state.pred

        for var in sorted(self._collect_vars(), key=str):
            name = var.name
            if name == "rsp0":
                variables[name] = WITNESS_STACK
            elif is_return_symbol(var) or name == "ret0":
                variables[name] = RETURN_SENTINEL
            else:
                interval = pred.interval_of(var)
                if interval is not None and interval.size() < (1 << 32):
                    variables[name] = rng.randint(interval.lo, interval.hi)
                else:
                    variables[name] = self._guided_value(var, rng)

        # Realize forced aliasing: make node-mates' addresses coincide by
        # adjusting single-variable bases.
        for group in self._alias_groups():
            anchor = group[0]
            try:
                target = self._eval_addr(anchor.addr, variables)
            except EvalError:
                return None
            for other in group[1:]:
                linear = linearize(other.addr)
                terms = linear.term_dict()
                if len(terms) == 1:
                    (term, coeff), = terms.items()
                    if coeff == 1 and isinstance(term, Var):
                        variables[term.name] = (target - linear.const) % (1 << 64)
        return variables

    def _eval_addr(self, expr: Expr, variables: dict[str, int]) -> int:
        return evaluate(expr, EvalEnv(variables=variables))

    def _guided_value(self, var: Var, rng: random.Random) -> int:
        """A candidate value satisfying the variable's own clauses.

        Tries a spread pointer-ish value, its negative mirror, zero and a
        few small constants; accepts the first one every single-variable
        clause on *var* admits (so e.g. ``x <s 0`` paths are samplable)."""
        positive = SCRATCH_BASE + 0x1000 * rng.randint(0, 64)
        candidates = [
            positive,
            (1 << 64) - positive,       # negative mirror
            0, 1, rng.randint(0, 255),
            (1 << 63) | positive,       # high-bit-set pointer
        ]
        own_clauses = [
            clause for clause in self.state.pred.clauses
            if clause.normalized().lhs == var
        ]
        for candidate in candidates:
            env = EvalEnv(variables={var.name: candidate})
            try:
                if all(clause.holds(env) for clause in own_clauses):
                    return candidate
            except EvalError:
                break
        return positive


def _make_initial_reader(binary, overlay: dict[int, int], rng: random.Random):
    def read(addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            a = (addr + i) & ((1 << 64) - 1)
            if a not in overlay:
                section = binary.section_at(a)
                if section is not None:
                    overlay[a] = section.data[a - section.addr]
                else:
                    overlay[a] = rng.randint(0, 255)
            value |= overlay[a] << (8 * i)
        return value

    return read


def build_witness(
    state: SymState, binary, rng: random.Random
) -> tuple[CPU, EvalEnv] | None:
    """One concrete CPU state satisfying *state*, or None."""
    sampler = _WitnessSampler(state, binary, rng)
    variables = sampler.sample_variables()
    if variables is None:
        return None
    overlay: dict[int, int] = {}
    read_initial = _make_initial_reader(binary, overlay, rng)
    env = EvalEnv(variables=variables, read_mem=read_initial)

    cpu = CPU(binary, rip=state.rip or 0)
    cpu.memory = Memory(binary)
    # Registers: valued ones from the predicate, the rest randomized.
    try:
        for reg in list(cpu.regs):
            value = state.pred.get_reg(reg)
            if value is not None:
                cpu.regs[reg] = evaluate(value, env)
            else:
                cpu.regs[reg] = rng.getrandbits(32)
        # Memory valuation clauses define current memory (and, where the
        # initial bytes are still undefined, initial memory too).
        for region, value in state.pred.mem:
            addr = evaluate(region.addr, env)
            concrete = evaluate(value, env)
            cpu.memory.write(addr, concrete, region.size)
            for i in range(region.size):
                overlay.setdefault((addr + i) & ((1 << 64) - 1),
                                   (concrete >> (8 * i)) & 0xFF)
    except EvalError:
        return None

    # Concrete flags: derive from the recorded flag state when available.
    flags = state.pred.flags
    if flags is not None:
        try:
            _set_concrete_flags(cpu, flags, env)
        except EvalError:
            return None
    else:
        for name in cpu.flags:
            cpu.flags[name] = rng.getrandbits(1)

    env.registers = {**cpu.regs, "rip": cpu.rip}
    if not state.pred.holds(env, read_current=cpu.memory.read):
        return None
    if not model_holds(state.model, env):
        return None
    return cpu, env


def _set_concrete_flags(cpu: CPU, flags, env: EvalEnv) -> None:
    from repro.expr import mask, to_signed

    width = flags.width
    a = evaluate(flags.a, env) & mask(width)
    if flags.kind == "cmp" and flags.b is not None:
        b = evaluate(flags.b, env) & mask(width)
        result = (a - b) & mask(width)
        cpu.flags["cf"] = int(a < b)
        cpu.flags["of"] = int(
            to_signed(a, width) - to_signed(b, width) != to_signed(result, width)
        )
    elif flags.kind == "test" and flags.b is not None:
        b = evaluate(flags.b, env) & mask(width)
        result = a & b
        cpu.flags["cf"] = cpu.flags["of"] = 0
    else:
        result = a
        cpu.flags["cf"] = cpu.flags["of"] = 0
    cpu.flags["zf"] = int(result == 0)
    cpu.flags["sf"] = (result >> (width - 1)) & 1
    cpu.flags["pf"] = 1 - (bin(result & 0xFF).count("1") & 1)


def _bind_unknowns(state: SymState, cpu: CPU, env: EvalEnv) -> dict[str, int]:
    """Witness bindings for the destination's existential variables."""
    bindings = dict(env.variables)
    for reg, value in state.pred.regs:
        if isinstance(value, Var) and value.name not in bindings:
            bindings[value.name] = cpu.rip if reg == "rip" else cpu.regs.get(reg, 0)
    for region, value in state.pred.mem:
        if isinstance(value, Var) and value.name not in bindings:
            try:
                addr = evaluate(region.addr, EvalEnv(variables=bindings))
            except EvalError:
                continue
            bindings[value.name] = cpu.memory.read(addr, region.size)
    # Variables referenced only by bound clauses (e.g. joined flag-state
    # operands): any in-bounds witness satisfies the state.
    for clause in state.pred.clauses:
        lhs = clause.lhs
        if isinstance(lhs, Var) and lhs.name not in bindings:
            interval = state.pred.interval_of(lhs)
            bindings[lhs.name] = interval.lo if interval is not None else 0
    if state.pred.flags is not None:
        for operand in (state.pred.flags.a, state.pred.flags.b):
            if operand is None:
                continue
            for node in operand.walk():
                if isinstance(node, Var) and node.name not in bindings:
                    interval = state.pred.interval_of(node)
                    bindings[node.name] = (
                        interval.lo if interval is not None else 0
                    )
    return bindings


def _post_holds(state: SymState, cpu: CPU, env: EvalEnv) -> bool:
    bindings = _bind_unknowns(state, cpu, env)
    probe = EvalEnv(
        variables=bindings,
        read_mem=env.read_mem,
        registers={**cpu.regs, "rip": cpu.rip},
    )
    return state.pred.holds(probe, read_current=cpu.memory.read) and \
        model_holds(state.model, probe)


def check_triples(
    result: LiftResult, samples: int = 6, seed: int = 2022,
    max_attempts_factor: int = 12,
) -> CheckReport:
    """Replay every Hoare triple of *result* against the concrete emulator."""
    graph = result.graph
    report = CheckReport()
    by_source: dict[tuple[VertexKey, int], list[VertexKey]] = {}
    for edge in graph.edges:
        by_source.setdefault((edge.src, edge.instr_addr), []).append(edge.dst)

    for (src, instr_addr), dsts in sorted(by_source.items(), key=str):
        src_state = graph.vertices.get(src)
        instr = graph.instructions.get(instr_addr)
        if src_state is None or instr is None:
            report.checks.append(
                TripleCheck(src, instr_addr, "assumed", detail="external stub")
            )
            continue
        if instr.mnemonic == "call" or any(d[0] == "exit" for d in dsts) and \
                instr.mnemonic not in ("hlt", "ud2", "int3", "syscall"):
            # Composition with a context-free callee or an external stub:
            # the triple holds by the callee's own verified contract /
            # recorded obligation, not by local execution.
            report.checks.append(
                TripleCheck(src, instr_addr, "assumed",
                            detail="function-contract composition")
            )
            continue

        rng = random.Random(seed ^ instr_addr)
        passed = 0
        attempts = 0
        failure = ""
        while passed < samples and attempts < samples * max_attempts_factor:
            attempts += 1
            witness = build_witness(src_state, result.binary, rng)
            if witness is None:
                continue
            cpu, env = witness
            if not _replay_one(cpu, env, instr, dsts, graph, result):
                failure = f"witness violates postcondition after {instr}"
                break
            passed += 1
        if failure:
            status = "FAILED"
        elif passed == 0:
            status = "untested"
        else:
            status = "proven"
        report.checks.append(
            TripleCheck(src, instr_addr, status, witnesses=passed, detail=failure)
        )
    if _T.enabled:
        for status, count in report.status_counts().items():
            if count:
                _M.inc(f"check.status.{status}", count)
        _T.emit("check.report", triples=len(report.checks),
                **report.status_counts())
    return report


def _replay_one(cpu: CPU, env: EvalEnv, instr, dsts, graph, result) -> bool:
    try:
        cpu.execute(instr)
    except Exception:
        # The witness drove the emulator somewhere unmodelled (e.g. a
        # division by a sampled zero): not a counterexample, skip it by
        # treating as covered only if some sink exists.
        return True
    # Sinks.
    for dst in dsts:
        if dst[0] == "ret":
            if cpu.rip == RETURN_SENTINEL:
                return True
        elif dst[0] == "exit":
            if cpu.halted:
                return True
        else:
            dst_state = graph.vertices.get(dst)
            if dst_state is not None and dst_state.rip == cpu.rip and \
                    _post_holds(dst_state, cpu, env):
                return True
    return False
