"""Decompiler tests: structure, condition recovery, obligation asserts."""

from __future__ import annotations

import re

import pytest

from repro import lift
from repro.corpus import ret2win
from repro.decompile import decompile
from repro.minicc import compile_source


def decompiled(source: str, **kw):
    result = lift(compile_source(source, name="dc"), **kw)
    assert result.verified
    return decompile(result), result


def test_functions_and_blocks_emitted():
    text, result = decompiled("""
    long helper(long x) { return x + 1; }
    long main(long n) { return helper(n) * 2; }
    """)
    assert "uint64_t main(void)" in text
    assert re.search(r"uint64_t sub_[0-9a-f]+\(void\)", text)
    assert "return rax;" in text
    assert text.count("{") == text.count("}")


def test_condition_recovered_from_cmp():
    text, _ = decompiled("""
    long main(long n) {
        if (n > 10) return 1;
        return 0;
    }
    """)
    # The jle/jg pair must decompile to a real comparison, not a flag stub.
    assert re.search(r"if \(\(int64_t\).* (<=|>) \(int64_t\)", text)
    assert "flags_" not in text


def test_unsigned_condition_has_no_cast():
    from repro.elf import BinaryBuilder
    from repro.isa import Imm

    builder = BinaryBuilder("u")
    t = builder.text
    t.label("main")
    t.emit("cmp", "rdi", Imm(5, 32))
    t.emit("ja", "big")
    t.emit("mov", "eax", Imm(0, 32))
    t.emit("ret")
    t.label("big")
    t.emit("mov", "eax", Imm(1, 32))
    t.emit("ret")
    result = lift(builder.build(entry="main"))
    text = decompile(result)
    assert re.search(r"if \(rdi > 0x5\)", text)


def test_memory_accesses_rendered():
    text, _ = decompiled("""
    long g;
    long main(long n) { g = n; return g; }
    """)
    assert "mem64(" in text


def test_calls_render_with_names():
    text, _ = decompiled("""
    extern long malloc();
    long main(long n) { return malloc(n); }
    """)
    assert "rax = malloc();" in text


def test_obligation_becomes_assert():
    result = lift(ret2win())
    text = decompile(result)
    assert "assert(" in text
    assert "obligation on memset" in text


def test_goto_structure_references_existing_blocks():
    text, _ = decompiled("""
    long main(long n) {
        long s = 0;
        while (n > 0) { s = s + n; n = n - 1; }
        return s;
    }
    """)
    labels = set(re.findall(r"^block_([0-9a-f]+):", text, re.M))
    targets = set(re.findall(r"goto block_([0-9a-f]+);", text))
    assert targets <= labels, targets - labels


def test_loop_has_back_edge_goto():
    text, _ = decompiled("""
    long main(long n) {
        long s = 0;
        for (long i = 0; i < n; i = i + 1) s = s + i;
        return s;
    }
    """)
    # Some goto jumps to an earlier-labelled block (the loop head).
    labels = [int(l, 16) for l in re.findall(r"^block_([0-9a-f]+):", text, re.M)]
    gotos = [int(t, 16) for t in re.findall(r"goto block_([0-9a-f]+);", text)]
    assert any(target <= max(labels[:2]) for target in gotos)
